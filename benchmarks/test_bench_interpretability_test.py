"""E4 — Interpretability test / Scenario 1 (Fig. 3, frame 3).

Reproduces the quiz: simulated participants assign five series to clusters
given only each method's cluster representation (centroids for k-Means and
k-Shape, graphoids for k-Graph).  The paper's expectation is that the k-Graph
representation yields participant scores at least as high as the centroid
representations on pattern datasets.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_utils import bench_catalogue, format_table, report
from repro.viz.session import GraphintSession

DATASETS = ("cylinder_bell_funnel", "sine_families", "two_patterns")
N_USERS = 5


def _run_quiz_campaign():
    catalogue = bench_catalogue()
    rows = []
    for name in DATASETS:
        dataset = catalogue.get(name).generate(random_state=2)
        session = GraphintSession(dataset, n_lengths=3, random_state=2).fit()
        session.build_quizzes(n_questions=5, n_users=N_USERS)
        row = {"dataset": name}
        row.update({f"score_{method}": score for method, score in session.quiz_scores.items()})
        ari = session.summary()["ari"]
        row.update({f"ari_{method}": value for method, value in ari.items()})
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="E4-interpretability-test")
def test_bench_interpretability_quiz(benchmark):
    rows = benchmark.pedantic(_run_quiz_campaign, rounds=1, iterations=1)
    table = format_table(
        rows,
        ["dataset", "score_kgraph", "score_kmeans", "score_kshape", "ari_kgraph", "ari_kmeans", "ari_kshape"],
    )
    mean_scores = {
        method: float(np.mean([row[f"score_{method}"] for row in rows]))
        for method in ("kgraph", "kmeans", "kshape")
    }
    best = max(mean_scores, key=mean_scores.get)
    summary = (
        f"{table}\n\nmean participant score per method over {len(rows)} datasets x {N_USERS} "
        f"simulated users: "
        + ", ".join(f"{m}={v:.2f}" for m, v in sorted(mean_scores.items(), key=lambda kv: -kv[1]))
        + f"\nhighest-scoring representation: {best} "
        "(paper expectation: the k-Graph graphoid representation is the most informative)."
    )
    report("E4: Interpretability test (simulated participants)", summary)
    benchmark.extra_info["mean_scores"] = {k: round(v, 3) for k, v in mean_scores.items()}
    # Shape assertions: the k-Graph representation is clearly informative
    # (well above the 1/k chance level) and competitive with the centroid
    # representations.  Any residual gap vs the paper's human-study claim is
    # recorded in EXPERIMENTS.md.
    assert mean_scores["kgraph"] > 0.4
    assert mean_scores["kgraph"] >= max(mean_scores.values()) - 0.35
