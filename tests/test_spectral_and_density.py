"""Unit tests for spectral clustering and the density-based clusterers."""

import numpy as np
import pytest

from repro.cluster.dbscan import DBSCAN
from repro.cluster.meanshift import MeanShift, estimate_bandwidth
from repro.cluster.optics import OPTICS
from repro.cluster.spectral import SpectralClustering
from repro.exceptions import ValidationError
from repro.metrics.clustering import adjusted_rand_index
from repro.metrics.distances import pairwise_distances


class TestSpectralClustering:
    def test_recovers_blobs_with_rbf(self, blob_data):
        points, truth = blob_data
        labels = SpectralClustering(n_clusters=3, random_state=0).fit_predict(points)
        assert adjusted_rand_index(truth, labels) > 0.9

    def test_precomputed_block_affinity(self):
        # Two perfect blocks in the affinity matrix must be recovered exactly.
        affinity = np.zeros((10, 10))
        affinity[:5, :5] = 1.0
        affinity[5:, 5:] = 1.0
        labels = SpectralClustering(
            n_clusters=2, affinity="precomputed", random_state=0
        ).fit_predict(affinity)
        assert adjusted_rand_index([0] * 5 + [1] * 5, labels) == pytest.approx(1.0)

    def test_embedding_shape(self, blob_data):
        points, _ = blob_data
        model = SpectralClustering(n_clusters=3, random_state=0).fit(points)
        assert model.embedding_.shape == (points.shape[0], 3)

    def test_invalid_affinity_mode(self):
        with pytest.raises(ValidationError):
            SpectralClustering(2, affinity="cosine")

    def test_nonsquare_precomputed(self):
        with pytest.raises(ValidationError):
            SpectralClustering(2, affinity="precomputed").fit(np.zeros((3, 4)))

    def test_negative_affinity_rejected(self):
        matrix = -np.ones((4, 4))
        with pytest.raises(ValidationError):
            SpectralClustering(2, affinity="precomputed").fit(matrix)

    def test_too_many_clusters(self, blob_data):
        points, _ = blob_data
        with pytest.raises(ValidationError):
            SpectralClustering(n_clusters=points.shape[0] + 1).fit(points)


class TestDBSCAN:
    def test_recovers_blobs(self, blob_data):
        points, truth = blob_data
        labels = DBSCAN(eps=1.2, min_samples=4).fit_predict(points)
        clustered = labels >= 0
        assert clustered.mean() > 0.9
        assert adjusted_rand_index(truth[clustered], labels[clustered]) > 0.9

    def test_far_outlier_is_noise(self, blob_data):
        points, _ = blob_data
        augmented = np.vstack([points, [[100.0, 100.0]]])
        labels = DBSCAN(eps=1.2, min_samples=4).fit_predict(augmented)
        assert labels[-1] == -1

    def test_precomputed_matches_feature_input(self, blob_data):
        points, _ = blob_data
        direct = DBSCAN(eps=1.2, min_samples=4).fit_predict(points)
        matrix = pairwise_distances(points)
        precomputed = DBSCAN(eps=1.2, min_samples=4, metric="precomputed").fit_predict(matrix)
        assert adjusted_rand_index(direct, precomputed) == pytest.approx(1.0)

    def test_core_samples_recorded(self, blob_data):
        points, _ = blob_data
        model = DBSCAN(eps=1.2, min_samples=4).fit(points)
        assert model.core_sample_indices_.size > 0

    def test_invalid_eps(self):
        with pytest.raises(ValidationError):
            DBSCAN(eps=0.0)


class TestOPTICS:
    def test_ordering_covers_all_points(self, blob_data):
        points, _ = blob_data
        model = OPTICS(min_samples=4).fit(points)
        assert sorted(model.ordering_.tolist()) == list(range(points.shape[0]))

    def test_recovers_blob_structure(self, blob_data):
        points, truth = blob_data
        labels = OPTICS(min_samples=4).fit_predict(points)
        clustered = labels >= 0
        assert clustered.mean() > 0.7
        assert adjusted_rand_index(truth[clustered], labels[clustered]) > 0.8

    def test_explicit_cluster_eps(self, blob_data):
        points, truth = blob_data
        labels = OPTICS(min_samples=4, cluster_eps=1.5).fit_predict(points)
        clustered = labels >= 0
        assert adjusted_rand_index(truth[clustered], labels[clustered]) > 0.8

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            OPTICS(min_samples=0)
        with pytest.raises(ValidationError):
            OPTICS(min_samples=3, max_eps=-1.0)
        with pytest.raises(ValidationError):
            OPTICS(min_samples=3, cluster_eps=0.0)


class TestMeanShift:
    def test_finds_three_modes(self, blob_data):
        points, truth = blob_data
        model = MeanShift(bandwidth=2.0).fit(points)
        assert model.cluster_centers_.shape[0] == 3
        assert adjusted_rand_index(truth, model.labels_) > 0.95

    def test_bandwidth_estimation_positive(self, blob_data):
        points, _ = blob_data
        assert estimate_bandwidth(points) > 0

    def test_auto_bandwidth_runs(self, blob_data):
        points, truth = blob_data
        labels = MeanShift().fit_predict(points)
        assert labels.shape == (points.shape[0],)

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            MeanShift(bandwidth=-1.0)
        with pytest.raises(ValidationError):
            estimate_bandwidth(np.zeros((5, 2)), quantile=0.0)
