"""Zero-copy shared-memory dataset plans for process backends.

A :class:`~repro.parallel.backends.ProcessBackend` pickles every job — and a
fan-out like ``KGraph.fit`` embeds the *same* dataset array in every
per-length job, so the dataset crosses the process boundary once per job.
This module removes that cost:

* :class:`SharedArrayPlan` writes each distinct array into a POSIX
  shared-memory segment **once** and hands out tiny picklable references;
* unpickling a reference in a worker attaches to the segment and yields a
  read-only NumPy **view** of the same physical pages — no copy, no
  per-job serialisation of the data;
* :class:`SharedMemoryBackend` applies this transparently: before
  submitting, it walks each job (dataclass fields, dict values, tuple/list
  elements) and swaps every large ``ndarray`` for a reference, de-duplicated
  by object identity, so callers and job functions keep working with plain
  arrays and nothing else in the codebase changes.

Results still travel back through normal pickling — they are distinct per
job; only the repeated *inputs* are worth sharing.

Worker-side views are marked read-only: jobs receive the caller's dataset
by reference, and silently mutating it from several workers would be a
correctness bug, not a feature.  Segments are unlinked by the parent as
soon as ``map_jobs`` returns; attached workers keep their mappings valid
until they drop them (POSIX keeps the pages alive while mapped).

When shared memory is unavailable (exotic platforms, exhausted
``/dev/shm``), the backend degrades gracefully to plain pickling.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

from repro.exceptions import ValidationError
from repro.parallel.backends import JobOutcome, OnResult, ProcessBackend

#: Arrays smaller than this travel as plain pickles: a shared-memory
#: segment costs a file descriptor and an mmap per worker, which only pays
#: off once the array itself is non-trivial.
DEFAULT_MIN_SHARE_BYTES = 64 * 1024

# Worker-side cache of attached segments: segment name -> SharedMemory.
# Keeping the handle referenced keeps the mapping (and therefore every
# ndarray view handed to jobs) valid; entries are pruned opportunistically
# once views are garbage and the cache grows past _ATTACH_CACHE_LIMIT.
# The limit is deliberately tiny: a fan-out rarely shares more than one or
# two distinct arrays, and every cached segment pins dataset-sized pages
# in the worker even after the parent unlinked the name.
_ATTACHED: "OrderedDict[str, Any]" = OrderedDict()
_ATTACH_CACHE_LIMIT = 2


def _prune_attached() -> None:
    """Drop attached segments whose views are gone, oldest first."""
    while len(_ATTACHED) > _ATTACH_CACHE_LIMIT:
        name, shm = next(iter(_ATTACHED.items()))
        try:
            shm.close()
        except Exception:
            # A live view still exports the buffer: keep the segment and
            # stop pruning (younger entries are even more likely in use).
            _ATTACHED.move_to_end(name)
            return
        del _ATTACHED[name]


def _attach_shared_array(name: str, shape: Tuple[int, ...], dtype: str) -> np.ndarray:
    """Worker-side reconstructor: attach to a segment, return a read-only view.

    This is what a pickled :class:`_SharedArrayRef` unpickles *into* — job
    functions receive an ordinary ``ndarray`` and never see the plumbing.
    """
    shm = _ATTACHED.get(name)
    if shm is None:
        try:
            shm = _shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # pragma: no cover - track= needs Python >= 3.13
            # < 3.13 registers attached segments with the (process-tree
            # shared) resource tracker.  The registry is a set, so this
            # duplicate registration collapses into the creator's entry and
            # the parent's unlink balances it — unregistering here instead
            # would double-remove and make the tracker raise.
            shm = _shared_memory.SharedMemory(name=name)
        _ATTACHED[name] = shm
        _prune_attached()
    view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
    view.flags.writeable = False
    return view


class _SharedArrayRef:
    """Tiny picklable stand-in for an array living in shared memory.

    Pickling one of these costs ~100 bytes regardless of the array size;
    unpickling yields the attached ndarray view itself (see
    :func:`_attach_shared_array`), so the substitution is invisible to job
    functions.
    """

    __slots__ = ("name", "shape", "dtype")

    def __init__(self, name: str, shape: Tuple[int, ...], dtype: str) -> None:
        self.name = name
        self.shape = shape
        self.dtype = dtype

    def __reduce__(self):
        return (_attach_shared_array, (self.name, self.shape, self.dtype))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_SharedArrayRef(name={self.name!r}, shape={self.shape}, dtype={self.dtype})"


class SharedArrayPlan:
    """Parent-side owner of the shared segments for one fan-out.

    ``share`` copies an array into shared memory the first time it sees it
    (identity-deduplicated, so the dataset embedded in M per-length jobs is
    written once) and returns the reference to embed in the job instead.
    ``close`` unlinks every segment; call it once all results are in.
    """

    def __init__(self) -> None:
        self._segments: List[Any] = []
        self._refs_by_id: Dict[int, _SharedArrayRef] = {}
        # Shared arrays must stay alive while their id() keys are in use —
        # a recycled id would alias a different array to a stale segment.
        self._keepalive: List[np.ndarray] = []

    @property
    def n_segments(self) -> int:
        """Number of distinct segments created so far."""
        return len(self._segments)

    def share(self, array: np.ndarray) -> _SharedArrayRef:
        """Return the shared-memory reference for ``array``, creating it once."""
        if _shared_memory is None:  # pragma: no cover - platform dependent
            raise ValidationError("shared memory is not available on this platform")
        existing = self._refs_by_id.get(id(array))
        if existing is not None:
            return existing
        contiguous = np.ascontiguousarray(array)
        shm = _shared_memory.SharedMemory(create=True, size=max(1, contiguous.nbytes))
        view = np.ndarray(contiguous.shape, dtype=contiguous.dtype, buffer=shm.buf)
        view[...] = contiguous
        ref = _SharedArrayRef(shm.name, contiguous.shape, contiguous.dtype.str)
        self._segments.append(shm)
        self._refs_by_id[id(array)] = ref
        self._keepalive.append(array)
        return ref

    def close(self) -> None:
        """Unlink every segment created by this plan (idempotent)."""
        for shm in self._segments:
            try:
                shm.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
            try:
                shm.unlink()
            except Exception:  # pragma: no cover - already unlinked
                pass
        self._segments.clear()
        self._refs_by_id.clear()
        self._keepalive.clear()

    def __enter__(self) -> "SharedArrayPlan":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def substitute_shared_arrays(
    job: Any,
    plan: SharedArrayPlan,
    min_bytes: int = DEFAULT_MIN_SHARE_BYTES,
    _depth: int = 3,
) -> Any:
    """Return ``job`` with every large ndarray swapped for a shared reference.

    Walks dataclass fields, dict values and tuple/list elements up to a
    small fixed depth (payload containers, not arbitrary object graphs) and
    rebuilds the container only when something actually changed, so jobs
    without arrays pass through untouched.
    """
    if isinstance(job, np.ndarray):
        if job.nbytes >= min_bytes:
            return plan.share(job)
        return job
    if _depth <= 0:
        return job
    if dataclasses.is_dataclass(job) and not isinstance(job, type):
        changes = {}
        for field in dataclasses.fields(job):
            value = getattr(job, field.name)
            replaced = substitute_shared_arrays(value, plan, min_bytes, _depth - 1)
            if replaced is not value:
                changes[field.name] = replaced
        return dataclasses.replace(job, **changes) if changes else job
    if isinstance(job, dict):
        replaced_items = {
            key: substitute_shared_arrays(value, plan, min_bytes, _depth - 1)
            for key, value in job.items()
        }
        if all(replaced_items[key] is job[key] for key in job):
            return job
        return replaced_items
    if isinstance(job, (tuple, list)):
        replaced_seq = [
            substitute_shared_arrays(value, plan, min_bytes, _depth - 1)
            for value in job
        ]
        if all(new is old for new, old in zip(replaced_seq, job)):
            return job
        if isinstance(job, tuple):
            # Preserve namedtuples (their constructor takes positional args).
            cls = type(job)
            return cls(*replaced_seq) if hasattr(cls, "_fields") else tuple(replaced_seq)
        return replaced_seq
    return job


class SharedMemoryBackend(ProcessBackend):
    """Process pool that ships large job arrays through shared memory.

    Behaves exactly like :class:`ProcessBackend` (same ordered results,
    per-job error capture, chunking) but, before submitting, swaps every
    ndarray of at least ``min_share_bytes`` embedded in a job for a
    zero-copy shared-memory reference — de-duplicated across jobs, so a
    dataset repeated in every job of a fan-out crosses the process boundary
    once instead of once per job.  Worker-side views are read-only; see the
    module docstring for lifecycle details.

    Select it anywhere a backend is accepted with ``backend="shared"``
    (aliases ``"shared_memory"``) or by passing an instance.
    """

    name = "shared_memory"

    def __init__(
        self,
        n_workers: Optional[int] = None,
        *,
        chunk_size: int = 1,
        min_share_bytes: int = DEFAULT_MIN_SHARE_BYTES,
    ) -> None:
        super().__init__(n_workers, chunk_size=chunk_size)
        if int(min_share_bytes) < 0:
            raise ValidationError(
                f"min_share_bytes must be >= 0, got {min_share_bytes}"
            )
        self.min_share_bytes = int(min_share_bytes)

    def map_jobs(
        self,
        fn: Callable[[Any], Any],
        jobs: Sequence[Any],
        *,
        on_result: OnResult = None,
    ) -> List[JobOutcome]:
        jobs = list(jobs)
        if not jobs:
            return []
        plan = SharedArrayPlan()
        try:
            try:
                submitted = [
                    substitute_shared_arrays(job, plan, self.min_share_bytes)
                    for job in jobs
                ]
            except Exception:
                # Shared memory unavailable or exhausted: degrade to plain
                # pickling rather than failing the fan-out.
                plan.close()
                plan = SharedArrayPlan()
                submitted = jobs
            return super().map_jobs(fn, submitted, on_result=on_result)
        finally:
            # Results are all in (or the pool broke): the segments have done
            # their job either way.  Workers that are still attached keep
            # their mappings; unlinking only removes the name.
            plan.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedMemoryBackend(n_workers={self.n_workers}, "
            f"chunk_size={self.chunk_size}, min_share_bytes={self.min_share_bytes})"
        )
