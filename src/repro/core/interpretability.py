"""Interpretability Computation — length selection and graphoid scoring.

k-Graph builds one graph per subsequence length but must present a single
graph to the analyst.  It selects the most useful one with two criteria
(Section II-B of the paper):

* **Consistency** ``W_c(ℓ) = ARI(L, L_ℓ)`` — how much the per-length
  partition agrees with the final consensus labels.
* **Interpretability factor** ``W_e(ℓ)`` — the average, over clusters, of the
  maximum node exclusivity in G_ℓ; a high value means every cluster owns at
  least one near-exclusive node.

The selected length ``¯ℓ`` maximises the product ``W_c(ℓ) · W_e(ℓ)``; the
corresponding graph is the one rendered by the Graph frame and used to
compute the graphoids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.graph_clustering import GraphPartition
from repro.exceptions import ValidationError
from repro.graph.graphoid import interpretability_factor
from repro.graph.structure import TimeSeriesGraph
from repro.metrics.clustering import adjusted_rand_index
from repro.parallel import ExecutionBackend, backend_scope
from repro.utils.validation import check_labels


@dataclass(frozen=True)
class LengthScore:
    """Scores attached to one candidate subsequence length."""

    length: int
    consistency: float
    interpretability: float

    @property
    def combined(self) -> float:
        """The selection criterion ``W_c(ℓ) · W_e(ℓ)``."""
        return self.consistency * self.interpretability


def consistency_score(final_labels, partition_labels) -> float:
    """``W_c(ℓ)``: ARI between the consensus labels and a per-length partition.

    ARI can be slightly negative for partitions worse than chance; the score
    is clipped at zero so the product criterion stays monotone in agreement.
    """
    value = adjusted_rand_index(final_labels, partition_labels)
    return float(max(value, 0.0))


@dataclass(frozen=True)
class _LengthScoreJob:
    """Picklable payload for scoring one candidate length in a worker."""

    length: int
    graph: TimeSeriesGraph
    partition_labels: np.ndarray
    final_labels: np.ndarray


def _score_one_length(job: _LengthScoreJob) -> LengthScore:
    """Pure per-length scorer dispatched through an execution backend."""
    consistency = consistency_score(job.final_labels, job.partition_labels)
    # W_e is computed with the *final* labels, because the graphoids the
    # analyst sees are defined with respect to the final clustering.
    interpretability = interpretability_factor(job.graph, job.final_labels)
    return LengthScore(
        length=int(job.length),
        consistency=consistency,
        interpretability=interpretability,
    )


def interpretability_scores(
    graphs: Dict[int, TimeSeriesGraph],
    partitions: Sequence[GraphPartition],
    final_labels,
    *,
    backend: Union[None, str, ExecutionBackend] = None,
    n_jobs: Optional[int] = None,
) -> List[LengthScore]:
    """Compute :class:`LengthScore` for every candidate length.

    ``graphs`` maps length -> graph; ``partitions`` carries the matching
    per-length labels.  Both are produced by the k-Graph pipeline.  The
    per-length scoring is independent across lengths and fans out through
    ``backend`` (serial by default — see :mod:`repro.parallel`).
    """
    final_labels = check_labels(final_labels)
    by_length = {partition.length: partition for partition in partitions}
    missing = set(graphs) - set(by_length)
    if missing:
        raise ValidationError(f"no partition available for lengths {sorted(missing)}")

    jobs: List[_LengthScoreJob] = []
    for length in sorted(graphs):
        partition = by_length[length]
        if partition.labels.shape[0] != final_labels.shape[0]:
            raise ValidationError(
                f"partition for length {length} has {partition.labels.shape[0]} labels, "
                f"expected {final_labels.shape[0]}"
            )
        jobs.append(
            _LengthScoreJob(
                length=int(length),
                graph=graphs[length],
                partition_labels=partition.labels,
                final_labels=final_labels,
            )
        )

    with backend_scope(backend, n_jobs) as resolved:
        outcomes = resolved.map_jobs(_score_one_length, jobs)
    return [outcome.unwrap() for outcome in outcomes]


def select_optimal_length(scores: Sequence[LengthScore]) -> int:
    """Return the length maximising ``W_c · W_e`` (ties go to the shorter length).

    When every combined score is zero (degenerate datasets), the length with
    the highest interpretability factor is returned so the Graph frame still
    has something meaningful to display.
    """
    if not scores:
        raise ValidationError("no length scores to select from")
    ordered = sorted(scores, key=lambda s: (-s.combined, s.length))
    best = ordered[0]
    if best.combined <= 0.0:
        ordered = sorted(scores, key=lambda s: (-s.interpretability, s.length))
        best = ordered[0]
    return int(best.length)


# Registered so distributed workers can score lengths by name (see
# repro.distributed.registry).
from repro.distributed.registry import register_worker_function  # noqa: E402

register_worker_function(_score_one_length)
