"""Clustering-comparison frame (Fig. 3, frame 1.1).

Four sub-windows: the dataset organised by the k-Graph partition, by two
baseline partitions (k-Means, k-Shape by default), and by the true labels.
Series are always coloured by the *true* labels, so a panel with mixed
colours inside a cluster reveals a low-accuracy partition at a glance.
Each method's ARI against the ground truth is shown in the panel title.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.exceptions import VisualizationError
from repro.metrics.clustering import adjusted_rand_index
from repro.utils.containers import TimeSeriesDataset
from repro.viz.frames.base import Frame, Panel
from repro.viz.plots import series_grid


def build_clustering_comparison_frame(
    dataset: TimeSeriesDataset,
    method_labels: Dict[str, Sequence[int]],
    *,
    max_series_per_panel: Optional[int] = None,
) -> Frame:
    """Build the frame from a dataset and per-method label vectors.

    Parameters
    ----------
    dataset:
        The user-selected dataset (must carry ground-truth labels).
    method_labels:
        Mapping method name -> predicted labels (typically ``{"kgraph": ...,
        "kmeans": ..., "kshape": ...}``).
    max_series_per_panel:
        Optional cap on the number of series drawn per panel (for very large
        datasets); series are subsampled uniformly per cluster.
    """
    if dataset.labels is None:
        raise VisualizationError("the clustering-comparison frame needs ground-truth labels")
    if not method_labels:
        raise VisualizationError("at least one method partition is required")

    frame = Frame(
        frame_id="clustering-comparison",
        title="Compare Methods: Clustering",
        description=(
            "Each panel groups the time series of the selected dataset by one "
            "method's clusters; colours encode the true labels, so mixed colours "
            "inside a cluster indicate clustering errors."
        ),
        metadata={"dataset": dataset.name},
    )

    data = dataset.data
    true_labels = dataset.labels
    if max_series_per_panel is not None and max_series_per_panel < dataset.n_series:
        keep = np.linspace(0, dataset.n_series - 1, max_series_per_panel).astype(int)
        data = data[keep]
        true_labels = true_labels[keep]
        method_labels = {
            name: np.asarray(labels)[keep] for name, labels in method_labels.items()
        }

    ari_values: Dict[str, float] = {}
    for method, labels in method_labels.items():
        labels = np.asarray(labels, dtype=int)
        if labels.shape[0] != data.shape[0]:
            raise VisualizationError(
                f"labels for {method!r} have length {labels.shape[0]}, expected {data.shape[0]}"
            )
        ari = adjusted_rand_index(true_labels, labels)
        ari_values[method] = ari
        frame.add_panel(
            Panel(
                title=f"{method} (ARI = {ari:.3f})",
                svg=series_grid(data, labels, colors=true_labels),
                caption=f"{dataset.name}: series grouped by the {method} partition.",
            )
        )

    frame.add_panel(
        Panel(
            title="True labels",
            svg=series_grid(data, true_labels, colors=true_labels),
            caption="The same series grouped by their ground-truth classes.",
        )
    )
    frame.metadata["ari"] = ari_values
    return frame
