"""Plot types used by the Graphint frames, rendered as SVG strings.

Each function returns a complete ``<svg>`` element.  The plots cover what
the five frames need: time series line plots (clustering comparison),
multi-series grids, box plots (benchmark frame), heatmaps (feature and
consensus matrices), histograms/bars (node exclusivity/representativity) and
scatter plots (PCA projections).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import VisualizationError
from repro.utils.validation import check_array
from repro.viz.svg import SVGCanvas
from repro.viz.theme import DEFAULT_THEME, color_for_cluster, sequential_color

Margins = Tuple[float, float, float, float]  # top, right, bottom, left
_DEFAULT_MARGINS: Margins = (30.0, 15.0, 30.0, 45.0)


class _Axes:
    """Maps data coordinates to pixel coordinates inside a margin box."""

    def __init__(
        self,
        canvas: SVGCanvas,
        x_range: Tuple[float, float],
        y_range: Tuple[float, float],
        margins: Margins = _DEFAULT_MARGINS,
    ) -> None:
        self.canvas = canvas
        top, right, bottom, left = margins
        self.left = left
        self.top = top
        self.plot_width = canvas.width - left - right
        self.plot_height = canvas.height - top - bottom
        if self.plot_width <= 0 or self.plot_height <= 0:
            raise VisualizationError("canvas too small for the requested margins")
        x_min, x_max = x_range
        y_min, y_max = y_range
        if x_max <= x_min:
            x_max = x_min + 1.0
        if y_max <= y_min:
            y_max = y_min + 1.0
        self.x_min, self.x_max = float(x_min), float(x_max)
        self.y_min, self.y_max = float(y_min), float(y_max)

    def x(self, value: float) -> float:
        """Pixel x for a data x."""
        fraction = (float(value) - self.x_min) / (self.x_max - self.x_min)
        return self.left + fraction * self.plot_width

    def y(self, value: float) -> float:
        """Pixel y for a data y (flipped: larger values are higher)."""
        fraction = (float(value) - self.y_min) / (self.y_max - self.y_min)
        return self.top + (1.0 - fraction) * self.plot_height

    def draw_frame(self, x_label: str = "", y_label: str = "", title: str = "") -> None:
        """Draw the axes box, tick labels and captions."""
        theme = DEFAULT_THEME
        canvas = self.canvas
        canvas.rect(
            self.left,
            self.top,
            self.plot_width,
            self.plot_height,
            fill="none",
            stroke=theme.axis_color,
            stroke_width=1.0,
        )
        for fraction in (0.0, 0.5, 1.0):
            x_value = self.x_min + fraction * (self.x_max - self.x_min)
            y_value = self.y_min + fraction * (self.y_max - self.y_min)
            canvas.text(
                self.x(x_value),
                self.top + self.plot_height + 14,
                f"{x_value:.3g}",
                size=theme.font_size - 2,
                anchor="middle",
                fill=theme.axis_color,
            )
            canvas.text(
                self.left - 6,
                self.y(y_value) + 4,
                f"{y_value:.3g}",
                size=theme.font_size - 2,
                anchor="end",
                fill=theme.axis_color,
            )
        if title:
            canvas.text(
                self.left + self.plot_width / 2,
                self.top - 10,
                title,
                size=theme.title_size,
                anchor="middle",
                bold=True,
            )
        if x_label:
            canvas.text(
                self.left + self.plot_width / 2,
                self.top + self.plot_height + 26,
                x_label,
                size=theme.font_size,
                anchor="middle",
                fill=theme.axis_color,
            )
        if y_label:
            canvas.text(
                14,
                self.top + self.plot_height / 2,
                y_label,
                size=theme.font_size,
                anchor="middle",
                fill=theme.axis_color,
                rotate=-90,
            )


# --------------------------------------------------------------------------- #
def line_plot(
    series: Sequence[Sequence[float]],
    *,
    labels: Optional[Sequence[int]] = None,
    highlight: Optional[Sequence[Tuple[int, int, int]]] = None,
    width: int = 460,
    height: int = 240,
    title: str = "",
    x_label: str = "time",
    y_label: str = "value",
) -> str:
    """Overlayed line plot of one or more series, coloured by ``labels``.

    ``highlight`` lists ``(series_index, start, end)`` ranges drawn thicker in
    the highlight colour (used to show the subsequences captured by a node).
    """
    rows = [np.asarray(s, dtype=float) for s in series]
    if not rows:
        raise VisualizationError("line_plot needs at least one series")
    x_max = max(row.shape[0] for row in rows) - 1
    y_min = min(float(row.min()) for row in rows)
    y_max = max(float(row.max()) for row in rows)

    canvas = SVGCanvas(width, height, background=DEFAULT_THEME.background)
    axes = _Axes(canvas, (0, max(x_max, 1)), (y_min, y_max))
    axes.draw_frame(x_label, y_label, title)

    for index, row in enumerate(rows):
        color = color_for_cluster(labels[index]) if labels is not None else "#4e79a7"
        points = [(axes.x(i), axes.y(v)) for i, v in enumerate(row)]
        if len(points) >= 2:
            canvas.polyline(points, stroke=color, stroke_width=1.1, opacity=0.85)
    if highlight:
        for series_index, start, end in highlight:
            if series_index >= len(rows):
                continue
            row = rows[series_index]
            start = max(0, int(start))
            end = min(row.shape[0], int(end))
            if end - start < 2:
                continue
            points = [(axes.x(i), axes.y(row[i])) for i in range(start, end)]
            canvas.polyline(points, stroke="#d62728", stroke_width=2.6, opacity=0.95)
    return canvas.to_svg()


def series_grid(
    data,
    labels,
    *,
    colors: Optional[Sequence[int]] = None,
    width: int = 460,
    height: int = 240,
    title: str = "",
) -> str:
    """Small-multiple view: one panel per cluster, series coloured by ``colors``.

    This is the layout of the Clustering-comparison frame: panels are the
    *predicted* clusters while colours encode the *true* labels, so mixed
    colours inside a panel reveal clustering errors at a glance.
    """
    array = check_array(data, name="data", ndim=2)
    labels = np.asarray(labels, dtype=int)
    if labels.shape[0] != array.shape[0]:
        raise VisualizationError("labels length does not match the number of series")
    color_source = np.asarray(colors, dtype=int) if colors is not None else labels

    clusters = sorted(np.unique(labels).tolist())
    n_panels = len(clusters)
    canvas = SVGCanvas(width, height, background=DEFAULT_THEME.background)
    if title:
        canvas.text(width / 2, 16, title, size=DEFAULT_THEME.title_size, anchor="middle", bold=True)
    panel_height = (height - 26) / max(n_panels, 1)
    y_min, y_max = float(array.min()), float(array.max())
    for panel_index, cluster in enumerate(clusters):
        top = 22 + panel_index * panel_height
        members = np.flatnonzero(labels == cluster)
        canvas.text(6, top + 12, f"cluster {cluster} ({members.size})", size=10, fill="#555555")
        for member in members:
            row = array[member]
            points = [
                (
                    40 + (width - 50) * i / max(row.shape[0] - 1, 1),
                    top + 4 + (panel_height - 10)
                    * (1.0 - (row[i] - y_min) / max(y_max - y_min, 1e-9)),
                )
                for i in range(row.shape[0])
            ]
            canvas.polyline(
                points,
                stroke=color_for_cluster(int(color_source[member])),
                stroke_width=0.8,
                opacity=0.75,
            )
    return canvas.to_svg()


def scatter_plot(
    points,
    *,
    labels: Optional[Sequence[int]] = None,
    extra_points: Optional[Sequence[Tuple[float, float]]] = None,
    width: int = 460,
    height: int = 300,
    title: str = "",
    x_label: str = "PC 1",
    y_label: str = "PC 2",
) -> str:
    """2-D scatter plot (PCA projection of subsequences), optional node markers."""
    array = check_array(points, name="points", ndim=2)
    if array.shape[1] < 2:
        raise VisualizationError("scatter_plot needs 2-D points")
    canvas = SVGCanvas(width, height, background=DEFAULT_THEME.background)
    axes = _Axes(
        canvas,
        (float(array[:, 0].min()), float(array[:, 0].max())),
        (float(array[:, 1].min()), float(array[:, 1].max())),
    )
    axes.draw_frame(x_label, y_label, title)
    for index in range(array.shape[0]):
        color = color_for_cluster(labels[index]) if labels is not None else "#4e79a7"
        canvas.circle(axes.x(array[index, 0]), axes.y(array[index, 1]), 1.6, fill=color, opacity=0.5)
    if extra_points:
        for x_value, y_value in extra_points:
            canvas.circle(axes.x(x_value), axes.y(y_value), 5.0, fill="#d62728", opacity=0.9)
    return canvas.to_svg()


def box_plot(
    groups: Dict[str, Sequence[float]],
    *,
    width: int = 940,
    height: int = 320,
    title: str = "",
    y_label: str = "score",
    highlight: Optional[str] = None,
) -> str:
    """Box plot of one distribution per named group (the Benchmark frame plot)."""
    if not groups:
        raise VisualizationError("box_plot needs at least one group")
    names = list(groups)
    values = {name: np.asarray(list(groups[name]), dtype=float) for name in names}
    for name, array in values.items():
        if array.size == 0:
            raise VisualizationError(f"group {name!r} is empty")
    y_min = min(float(v.min()) for v in values.values())
    y_max = max(float(v.max()) for v in values.values())

    canvas = SVGCanvas(width, height, background=DEFAULT_THEME.background)
    axes = _Axes(canvas, (0, len(names)), (min(y_min, 0.0), max(y_max, 1.0)), (30, 15, 70, 45))
    axes.draw_frame("", y_label, title)

    slot = axes.plot_width / len(names)
    for index, name in enumerate(names):
        array = values[name]
        q1, median, q3 = np.percentile(array, [25, 50, 75])
        low, high = float(array.min()), float(array.max())
        centre = axes.left + slot * (index + 0.5)
        half = min(slot * 0.3, 22.0)
        color = "#d62728" if highlight is not None and name == highlight else "#4e79a7"

        canvas.line(centre, axes.y(low), centre, axes.y(high), stroke="#666666")
        canvas.rect(
            centre - half,
            axes.y(q3),
            2 * half,
            max(axes.y(q1) - axes.y(q3), 1.0),
            fill=color,
            opacity=0.55,
            stroke="#333333",
            tooltip=f"{name}: median={median:.3f}",
        )
        canvas.line(centre - half, axes.y(median), centre + half, axes.y(median), stroke="#111111", stroke_width=1.6)
        canvas.text(
            centre,
            axes.top + axes.plot_height + 12,
            name,
            size=9,
            anchor="end",
            rotate=-35,
            fill="#333333",
        )
    return canvas.to_svg()


def heatmap(
    matrix,
    *,
    width: int = 420,
    height: int = 380,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    max_cells: int = 200,
) -> str:
    """Heatmap of a matrix (consensus matrix, feature matrix).

    Matrices larger than ``max_cells`` along an axis are downsampled by block
    averaging so the SVG stays small while preserving the visual structure.
    """
    array = check_array(matrix, name="matrix", ndim=2, allow_nan=False)

    def _downsample(values: np.ndarray, target: int) -> np.ndarray:
        if values.shape[0] <= target and values.shape[1] <= target:
            return values
        row_bins = min(values.shape[0], target)
        col_bins = min(values.shape[1], target)
        row_edges = np.linspace(0, values.shape[0], row_bins + 1).astype(int)
        col_edges = np.linspace(0, values.shape[1], col_bins + 1).astype(int)
        output = np.zeros((row_bins, col_bins))
        for i in range(row_bins):
            for j in range(col_bins):
                block = values[row_edges[i]: row_edges[i + 1], col_edges[j]: col_edges[j + 1]]
                output[i, j] = block.mean() if block.size else 0.0
        return output

    array = _downsample(array, max_cells)
    minimum, maximum = float(array.min()), float(array.max())
    span = maximum - minimum if maximum > minimum else 1.0

    canvas = SVGCanvas(width, height, background=DEFAULT_THEME.background)
    margins = (36.0, 14.0, 30.0, 40.0)
    top, right, bottom, left = margins
    plot_width = width - left - right
    plot_height = height - top - bottom
    cell_width = plot_width / array.shape[1]
    cell_height = plot_height / array.shape[0]
    for i in range(array.shape[0]):
        for j in range(array.shape[1]):
            value = (array[i, j] - minimum) / span
            canvas.rect(
                left + j * cell_width,
                top + i * cell_height,
                cell_width + 0.5,
                cell_height + 0.5,
                fill=sequential_color(value),
                stroke="none",
            )
    canvas.rect(left, top, plot_width, plot_height, fill="none", stroke="#555555")
    if title:
        canvas.text(width / 2, 20, title, size=DEFAULT_THEME.title_size, anchor="middle", bold=True)
    if x_label:
        canvas.text(left + plot_width / 2, height - 8, x_label, size=11, anchor="middle", fill="#555555")
    if y_label:
        canvas.text(14, top + plot_height / 2, y_label, size=11, anchor="middle", rotate=-90, fill="#555555")
    return canvas.to_svg()


def bar_chart(
    values: Dict[str, float],
    *,
    width: int = 420,
    height: int = 220,
    title: str = "",
    y_label: str = "",
    colors: Optional[Dict[str, str]] = None,
) -> str:
    """Vertical bar chart (node exclusivity / representativity per cluster)."""
    if not values:
        raise VisualizationError("bar_chart needs at least one value")
    names = list(values)
    heights = np.array([float(values[name]) for name in names])
    canvas = SVGCanvas(width, height, background=DEFAULT_THEME.background)
    axes = _Axes(canvas, (0, len(names)), (min(0.0, float(heights.min())), max(1.0, float(heights.max()))), (30, 15, 44, 45))
    axes.draw_frame("", y_label, title)
    slot = axes.plot_width / len(names)
    for index, name in enumerate(names):
        value = heights[index]
        color = (colors or {}).get(name, color_for_cluster(index))
        x_position = axes.left + slot * index + slot * 0.15
        canvas.rect(
            x_position,
            axes.y(max(value, 0.0)),
            slot * 0.7,
            abs(axes.y(0.0) - axes.y(value)),
            fill=color,
            opacity=0.8,
            stroke="#333333",
            tooltip=f"{name}: {value:.3f}",
        )
        canvas.text(
            axes.left + slot * (index + 0.5),
            axes.top + axes.plot_height + 14,
            name,
            size=9,
            anchor="middle",
            fill="#333333",
        )
    return canvas.to_svg()


def histogram(
    values,
    *,
    n_bins: int = 20,
    width: int = 420,
    height: int = 220,
    title: str = "",
    x_label: str = "",
) -> str:
    """Histogram of a 1-D sample (score distributions in the quiz frame)."""
    array = check_array(values, name="values", ndim=1, min_rows=1)
    counts, edges = np.histogram(array, bins=int(n_bins))
    canvas = SVGCanvas(width, height, background=DEFAULT_THEME.background)
    axes = _Axes(canvas, (float(edges[0]), float(edges[-1])), (0, float(max(counts.max(), 1))))
    axes.draw_frame(x_label, "count", title)
    for i, count in enumerate(counts):
        canvas.rect(
            axes.x(edges[i]),
            axes.y(count),
            max(axes.x(edges[i + 1]) - axes.x(edges[i]) - 1.0, 0.5),
            axes.y(0) - axes.y(count),
            fill="#4e79a7",
            opacity=0.8,
            stroke="none",
        )
    return canvas.to_svg()


def curve_comparison(
    x_values: Sequence[float],
    curves: Dict[str, Sequence[float]],
    *,
    width: int = 460,
    height: int = 260,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    marker: Optional[float] = None,
) -> str:
    """Several named curves over the same x grid (W_c / W_e vs length plot).

    ``marker`` draws a dashed vertical line (the selected length ¯ℓ).
    """
    if not curves:
        raise VisualizationError("curve_comparison needs at least one curve")
    x_array = np.asarray(list(x_values), dtype=float)
    all_values = np.concatenate([np.asarray(list(c), dtype=float) for c in curves.values()])
    canvas = SVGCanvas(width, height, background=DEFAULT_THEME.background)
    axes = _Axes(
        canvas,
        (float(x_array.min()), float(x_array.max())),
        (min(0.0, float(all_values.min())), max(1.0, float(all_values.max()))),
    )
    axes.draw_frame(x_label, y_label, title)
    for index, (name, values) in enumerate(curves.items()):
        y_array = np.asarray(list(values), dtype=float)
        if y_array.shape[0] != x_array.shape[0]:
            raise VisualizationError(f"curve {name!r} length does not match x_values")
        color = color_for_cluster(index)
        points = [(axes.x(x), axes.y(y)) for x, y in zip(x_array, y_array)]
        if len(points) >= 2:
            canvas.polyline(points, stroke=color, stroke_width=2.0)
        else:
            canvas.circle(points[0][0], points[0][1], 3.0, fill=color)
        for x, y in zip(x_array, y_array):
            canvas.circle(axes.x(x), axes.y(y), 2.6, fill=color)
        canvas.text(axes.left + axes.plot_width - 4, axes.top + 14 + 14 * index, name, size=11, anchor="end", fill=color)
    if marker is not None:
        canvas.line(axes.x(marker), axes.top, axes.x(marker), axes.top + axes.plot_height, stroke="#d62728", dashed=True, stroke_width=1.6)
    return canvas.to_svg()
