#!/usr/bin/env python
"""Pipeline-resume smoke check (CI).

Runs a tiny k-Graph fit through the stage pipeline with a disk checkpoint
cache, then

1. re-fits with identical parameters — every stage must replay from the
   cache and the results must be bit-identical;
2. re-fits with one changed parameter (``feature_mode``) — the upstream
   ``embed`` stage must be skipped while every downstream stage re-runs,
   and the partially replayed fit must be bit-identical to a cold
   reference fit of the changed configuration.

Exit status: 0 when every invariant holds, 1 otherwise.  This is the
cheap, deterministic guard for the resumability contract of
``repro.pipeline`` (the full matrix lives in ``tests/test_pipeline.py``).

Usage::

    PYTHONPATH=src python benchmarks/pipeline_resume_smoke.py
"""

from __future__ import annotations

import sys
import tempfile

import numpy as np

from repro.core.kgraph import KGraph
from repro.datasets.synthetic import make_cylinder_bell_funnel
from repro.pipeline import KGRAPH_STAGE_NAMES

ALL_STAGES = list(KGRAPH_STAGE_NAMES)


def _check(condition: bool, message: str, failures: list) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        failures.append(message)


def main() -> int:
    dataset = make_cylinder_bell_funnel(
        n_series=15, length=48, noise=0.2, random_state=0
    )
    failures: list = []
    with tempfile.TemporaryDirectory(prefix="kgraph-stage-cache-") as cache_dir:
        params = dict(n_clusters=3, n_lengths=2, random_state=0)

        print("cold fit (populates the checkpoint cache)")
        cold = KGraph(**params, stage_cache=cache_dir).fit(dataset.data)
        _check(
            cold.pipeline_report_.executed == ALL_STAGES,
            f"every stage executed: {cold.pipeline_report_.executed}",
            failures,
        )

        print("identical re-fit (must replay every stage)")
        warm = KGraph(**params, stage_cache=cache_dir).fit(dataset.data)
        _check(
            warm.pipeline_report_.cached == ALL_STAGES,
            f"every stage replayed: {warm.pipeline_report_.cached}",
            failures,
        )
        _check(
            np.array_equal(warm.labels_, cold.labels_)
            and np.array_equal(
                warm.result_.consensus_matrix, cold.result_.consensus_matrix
            ),
            "replayed fit is bit-identical to the cold fit",
            failures,
        )

        print("one-parameter change (feature_mode: must skip only 'embed')")
        changed = dict(params, feature_mode="nodes")
        partial = KGraph(**changed, stage_cache=cache_dir).fit(dataset.data)
        _check(
            partial.pipeline_report_.cached == ["embed"],
            f"upstream embed skipped: cached={partial.pipeline_report_.cached}",
            failures,
        )
        _check(
            partial.pipeline_report_.executed == ALL_STAGES[1:],
            f"downstream stages re-ran: executed={partial.pipeline_report_.executed}",
            failures,
        )
        reference = KGraph(**changed).fit_reference(dataset.data)
        _check(
            np.array_equal(partial.labels_, reference.labels_)
            and np.array_equal(
                partial.result_.consensus_matrix,
                reference.result_.consensus_matrix,
            )
            and partial.result_.optimal_length == reference.result_.optimal_length,
            "partially replayed fit is bit-identical to a cold reference fit",
            failures,
        )

    if failures:
        print(f"\npipeline resume smoke FAILED ({len(failures)} check(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\npipeline resume smoke passed: upstream stages skip, results stay bit-identical.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
