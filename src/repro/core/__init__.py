"""k-Graph: the paper's core contribution.

* :mod:`repro.core.graph_clustering` — step (c): per-graph node/edge feature
  matrices clustered with k-Means, one partition L_ℓ per length.
* :mod:`repro.core.consensus` — step (d): consensus (co-association) matrix
  across partitions and spectral consensus clustering.
* :mod:`repro.core.interpretability` — consistency W_c(ℓ), interpretability
  factor W_e(ℓ), optimal length selection and graphoid computation.
* :mod:`repro.core.kgraph` — the :class:`KGraph` estimator tying everything
  together, and :class:`KGraphResult` exposing every intermediate artifact
  the Graphint frames visualise.
"""

from repro.core.consensus import build_consensus_matrix, consensus_clustering
from repro.core.graph_clustering import GraphPartition, cluster_graph
from repro.core.interpretability import (
    LengthScore,
    consistency_score,
    interpretability_scores,
    select_optimal_length,
)
from repro.core.kgraph import KGraph, KGraphResult

__all__ = [
    "GraphPartition",
    "KGraph",
    "KGraphResult",
    "LengthScore",
    "build_consensus_matrix",
    "cluster_graph",
    "consensus_clustering",
    "consistency_score",
    "interpretability_scores",
    "select_optimal_length",
]
