"""Fused stage dispatch: embed + graph_cluster in one fan-out round trip.

The contract under test:

* a fused fit is **bit-identical** to the unfused pipeline (and therefore
  to ``fit_reference``) — including every stage cache key, so a cache
  populated by a fused run replays in an unfused one and vice versa;
* fusion is an execution detail: both stages still get their own cache
  entry and their own :class:`StageRecord` (flagged ``fused``), so
  downstream-only re-runs keep working;
* auto mode fuses only when both stages share one process backend; a
  first-stage cache hit falls back to the unfused replay path;
* ``bytes_shipped`` accounting surfaces what each stage actually pickled
  across the process boundary.
"""

import numpy as np
import pytest

from repro.core.kgraph import KGraph
from repro.exceptions import PipelineError, ValidationError
from repro.parallel import ProcessBackend, SharedMemoryBackend
from repro.pipeline import KGRAPH_STAGE_NAMES, MemoryStageCache, PipelineContext, Stage

ALL_STAGES = list(KGRAPH_STAGE_NAMES)
FUSED_PAIR = ["embed", "graph_cluster"]


def _fit(dataset, *, fuse=None, cache=None, backend=None, n_jobs=None, **overrides):
    params = dict(n_clusters=3, n_lengths=2, random_state=11)
    params.update(overrides)
    return KGraph(
        **params,
        backend=backend,
        n_jobs=n_jobs,
        stage_cache=cache,
        fuse_stages=fuse,
    ).fit(dataset.data)


def _stage_keys(model):
    return {record.name: record.key for record in model.pipeline_report_.records}


def _assert_results_identical(a, b):
    assert np.array_equal(a.labels_, b.labels_)
    assert np.array_equal(a.result_.consensus_matrix, b.result_.consensus_matrix)
    assert a.result_.optimal_length == b.result_.optimal_length
    for length in a.result_.graphs:
        assert (
            a.result_.graphs[length].to_payload()
            == b.result_.graphs[length].to_payload()
        )
    for ours, theirs in zip(a.result_.partitions, b.result_.partitions):
        assert np.array_equal(ours.labels, theirs.labels)
        assert np.array_equal(ours.feature_matrix, theirs.feature_matrix)


class TestForcedFusion:
    def test_fused_fit_is_bit_identical_to_unfused(self, small_dataset):
        plain = _fit(small_dataset, fuse=False)
        fused = _fit(small_dataset, fuse=True)
        _assert_results_identical(fused, plain)
        reference = KGraph(n_clusters=3, n_lengths=2, random_state=11).fit_reference(
            small_dataset.data
        )
        _assert_results_identical(fused, reference)

    def test_report_flags_both_stages_fused(self, small_dataset):
        fused = _fit(small_dataset, fuse=True)
        assert fused.pipeline_report_.fused == FUSED_PAIR
        assert fused.pipeline_report_.executed == ALL_STAGES
        by_name = {record.name: record for record in fused.pipeline_report_.records}
        for name in ALL_STAGES:
            assert by_name[name].fused == (name in FUSED_PAIR)
        plain = _fit(small_dataset, fuse=False)
        assert plain.pipeline_report_.fused == []

    def test_cache_keys_identical_fused_vs_unfused(self, small_dataset):
        fused = _fit(small_dataset, fuse=True)
        plain = _fit(small_dataset, fuse=False)
        assert _stage_keys(fused) == _stage_keys(plain)

    def test_fused_run_populates_cache_for_unfused_replay(self, small_dataset):
        cache = MemoryStageCache()
        _fit(small_dataset, fuse=True, cache=cache)
        assert cache.counters.stores == len(ALL_STAGES)
        warm = _fit(small_dataset, fuse=False, cache=cache)
        assert warm.pipeline_report_.cached == ALL_STAGES

    def test_unfused_cache_replays_into_fused_run(self, small_dataset):
        cache = MemoryStageCache()
        _fit(small_dataset, fuse=False, cache=cache)
        warm = _fit(small_dataset, fuse=True, cache=cache)
        # First-stage hit disables fusion for the pair: everything replays.
        assert warm.pipeline_report_.cached == ALL_STAGES
        assert warm.pipeline_report_.fused == []

    def test_downstream_only_rerun_after_fused_run(self, small_dataset):
        cache = MemoryStageCache()
        first = _fit(small_dataset, fuse=True, cache=cache)
        warm = _fit(
            small_dataset, fuse=True, cache=cache, gamma_threshold=0.8
        )
        assert warm.pipeline_report_.cached == [
            "embed", "graph_cluster", "consensus", "length_selection"
        ]
        assert warm.pipeline_report_.executed == ["interpretability"]
        cold = _fit(small_dataset, fuse=False, gamma_threshold=0.8)
        _assert_results_identical(warm, cold)
        del first


class TestAutoFusion:
    def test_serial_backend_does_not_fuse(self, small_dataset):
        model = _fit(small_dataset)  # fuse=None (auto), serial backend
        assert model.pipeline_report_.fused == []

    def test_shared_process_backend_fuses(self, small_dataset):
        backend = SharedMemoryBackend(2, min_share_bytes=0)
        try:
            model = _fit(small_dataset, backend=backend)
        finally:
            backend.close()
        assert model.pipeline_report_.fused == FUSED_PAIR
        plain = _fit(small_dataset, fuse=False)
        _assert_results_identical(model, plain)
        assert _stage_keys(model) == _stage_keys(plain)

    def test_process_backend_fuses_bit_identically(self, small_dataset):
        backend = ProcessBackend(2)
        try:
            model = _fit(small_dataset, backend=backend)
        finally:
            backend.close()
        assert model.pipeline_report_.fused == FUSED_PAIR
        _assert_results_identical(model, _fit(small_dataset, fuse=False))

    def test_invalid_fuse_value_rejected(self, small_dataset):
        with pytest.raises(ValidationError):
            KGraph(n_clusters=3, fuse_stages="always")

    def test_default_run_fused_raises(self):
        class Bare(Stage):
            name = "bare"
            outputs = ("x",)

            def run(self, ctx):  # pragma: no cover - never runs
                return {"x": 1}

        with pytest.raises(PipelineError, match="no fused execution path"):
            Bare().run_fused(Bare(), PipelineContext())


class TestBytesShipped:
    def test_process_backend_accounts_shipped_bytes(self, small_dataset):
        backend = ProcessBackend(2)
        try:
            model = _fit(small_dataset, backend=backend)
        finally:
            backend.close()
        shipped = model.result_.bytes_shipped
        # The fused pair ships one round of jobs attributed to embed.
        assert shipped.get("embed", 0) > 0
        assert model.pipeline_report_.stage_bytes_shipped.get("embed", 0) > 0
        summary = model.result_.summary()
        assert summary["stage_bytes_shipped"]["embed"] > 0
        by_name = {record.name: record for record in model.pipeline_report_.records}
        assert by_name["embed"].bytes_shipped > 0
        assert by_name["embed"].as_dict()["bytes_shipped"] > 0

    def test_serial_backend_ships_nothing(self, small_dataset):
        model = _fit(small_dataset, fuse=False)
        # Nothing crosses a process boundary: the context never accumulates
        # transfer, and every stage record reports zero bytes.
        assert model.result_.bytes_shipped == {}
        shipped = model.pipeline_report_.stage_bytes_shipped
        assert set(shipped) == set(ALL_STAGES)
        assert all(value == 0 for value in shipped.values())
