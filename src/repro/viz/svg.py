"""Minimal SVG drawing canvas.

All Graphint plots are rendered to Scalable Vector Graphics strings that can
be embedded directly in HTML.  The canvas exposes the handful of primitives
the plot functions need (lines, polylines, rectangles, circles, text, paths)
with data-space -> pixel-space mapping handled by the plot layer.
"""

from __future__ import annotations

import html
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import VisualizationError


def _fmt(value: float) -> str:
    """Compact float formatting for SVG attributes."""
    return f"{float(value):.2f}".rstrip("0").rstrip(".")


class SVGCanvas:
    """An append-only SVG document of fixed pixel size.

    Parameters
    ----------
    width, height:
        Pixel dimensions of the drawing.
    background:
        Optional background fill colour.
    """

    def __init__(self, width: int, height: int, background: Optional[str] = None) -> None:
        if width <= 0 or height <= 0:
            raise VisualizationError("canvas dimensions must be positive")
        self.width = int(width)
        self.height = int(height)
        self._elements: List[str] = []
        if background:
            self.rect(0, 0, self.width, self.height, fill=background, stroke="none")

    # ------------------------------------------------------------------ #
    def rect(
        self,
        x: float,
        y: float,
        width: float,
        height: float,
        *,
        fill: str = "none",
        stroke: str = "#000000",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
        rx: float = 0.0,
        tooltip: Optional[str] = None,
    ) -> None:
        """Draw a rectangle."""
        title = f"<title>{html.escape(tooltip)}</title>" if tooltip else ""
        self._elements.append(
            f'<rect x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(width)}" height="{_fmt(height)}" '
            f'rx="{_fmt(rx)}" fill="{fill}" stroke="{stroke}" stroke-width="{_fmt(stroke_width)}" '
            f'opacity="{_fmt(opacity)}">{title}</rect>'
        )

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        *,
        stroke: str = "#000000",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
        dashed: bool = False,
    ) -> None:
        """Draw a straight line segment."""
        dash = ' stroke-dasharray="4 3"' if dashed else ""
        self._elements.append(
            f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}" x2="{_fmt(x2)}" y2="{_fmt(y2)}" '
            f'stroke="{stroke}" stroke-width="{_fmt(stroke_width)}" opacity="{_fmt(opacity)}"{dash}/>'
        )

    def polyline(
        self,
        points: Sequence[Tuple[float, float]],
        *,
        stroke: str = "#000000",
        stroke_width: float = 1.2,
        opacity: float = 1.0,
        fill: str = "none",
    ) -> None:
        """Draw a connected series of points."""
        if len(points) < 2:
            raise VisualizationError("a polyline needs at least two points")
        path = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self._elements.append(
            f'<polyline points="{path}" fill="{fill}" stroke="{stroke}" '
            f'stroke-width="{_fmt(stroke_width)}" opacity="{_fmt(opacity)}"/>'
        )

    def circle(
        self,
        cx: float,
        cy: float,
        radius: float,
        *,
        fill: str = "#000000",
        stroke: str = "none",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
        tooltip: Optional[str] = None,
    ) -> None:
        """Draw a circle (optionally with a hover tooltip)."""
        title = f"<title>{html.escape(tooltip)}</title>" if tooltip else ""
        self._elements.append(
            f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" r="{_fmt(radius)}" fill="{fill}" '
            f'stroke="{stroke}" stroke-width="{_fmt(stroke_width)}" opacity="{_fmt(opacity)}">'
            f"{title}</circle>"
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        *,
        size: int = 12,
        fill: str = "#222222",
        anchor: str = "start",
        rotate: Optional[float] = None,
        bold: bool = False,
        font_family: str = "Helvetica, Arial, sans-serif",
    ) -> None:
        """Draw a text label."""
        transform = f' transform="rotate({_fmt(rotate)} {_fmt(x)} {_fmt(y)})"' if rotate else ""
        weight = ' font-weight="bold"' if bold else ""
        self._elements.append(
            f'<text x="{_fmt(x)}" y="{_fmt(y)}" font-size="{size}" fill="{fill}" '
            f'text-anchor="{anchor}" font-family="{font_family}"{weight}{transform}>'
            f"{html.escape(str(content))}</text>"
        )

    def arrow(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        *,
        stroke: str = "#888888",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
        head_size: float = 4.0,
    ) -> None:
        """Draw a straight arrow from (x1, y1) to (x2, y2)."""
        import math

        self.line(x1, y1, x2, y2, stroke=stroke, stroke_width=stroke_width, opacity=opacity)
        angle = math.atan2(y2 - y1, x2 - x1)
        for offset in (math.pi / 7, -math.pi / 7):
            hx = x2 - head_size * math.cos(angle + offset)
            hy = y2 - head_size * math.sin(angle + offset)
            self.line(x2, y2, hx, hy, stroke=stroke, stroke_width=stroke_width, opacity=opacity)

    def group_raw(self, svg_fragment: str) -> None:
        """Append a pre-rendered SVG fragment (used to nest plots)."""
        self._elements.append(svg_fragment)

    # ------------------------------------------------------------------ #
    def to_svg(self) -> str:
        """Serialise the canvas to a standalone ``<svg>`` element."""
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f"{body}\n</svg>"
        )

    def __str__(self) -> str:
        return self.to_svg()
