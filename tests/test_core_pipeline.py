"""Unit tests for the k-Graph pipeline stages (graph clustering, consensus,
interpretability) taken in isolation."""

import numpy as np
import pytest

from repro.core.consensus import build_consensus_matrix, consensus_clustering
from repro.core.graph_clustering import cluster_graph
from repro.core.interpretability import (
    LengthScore,
    consistency_score,
    interpretability_scores,
    select_optimal_length,
)
from repro.exceptions import ValidationError
from repro.graph.embedding import build_graph
from repro.metrics.clustering import adjusted_rand_index


class TestClusterGraph:
    @pytest.fixture(scope="class")
    def graph(self, small_dataset):
        return build_graph(small_dataset.data, length=16, random_state=0)

    def test_partition_properties(self, graph, small_dataset):
        partition = cluster_graph(graph, 3, random_state=0)
        assert partition.labels.shape == (small_dataset.n_series,)
        assert np.unique(partition.labels).size == 3
        assert partition.length == 16
        assert partition.feature_matrix.shape[0] == small_dataset.n_series
        assert partition.feature_matrix.shape[1] == graph.n_nodes + graph.n_edges
        assert partition.inertia >= 0

    def test_partition_beats_chance(self, graph, small_dataset):
        partition = cluster_graph(graph, 3, random_state=0)
        assert adjusted_rand_index(small_dataset.labels, partition.labels) > 0.3

    def test_feature_modes(self, graph):
        nodes_only = cluster_graph(graph, 3, feature_mode="nodes", random_state=0)
        edges_only = cluster_graph(graph, 3, feature_mode="edges", random_state=0)
        assert nodes_only.feature_matrix.shape[1] == graph.n_nodes
        assert edges_only.feature_matrix.shape[1] == graph.n_edges

    def test_summary(self, graph):
        summary = cluster_graph(graph, 3, random_state=0).summary()
        assert summary["length"] == 16
        assert summary["n_clusters"] == 3

    def test_invalid_feature_mode(self, graph):
        with pytest.raises(ValidationError):
            cluster_graph(graph, 3, feature_mode="hyperedges")

    def test_too_many_clusters(self, graph):
        with pytest.raises(ValidationError):
            cluster_graph(graph, graph.n_series + 1)


class TestConsensus:
    def test_consensus_matrix_values(self):
        partitions = [
            np.array([0, 0, 1, 1]),
            np.array([0, 0, 1, 1]),
            np.array([0, 1, 1, 0]),
        ]
        matrix = build_consensus_matrix(partitions)
        assert matrix.shape == (4, 4)
        assert np.allclose(np.diag(matrix), 1.0)
        assert matrix[0, 1] == pytest.approx(2 / 3)
        assert matrix[0, 3] == pytest.approx(1 / 3)
        assert np.allclose(matrix, matrix.T)

    def test_identical_partitions_give_binary_matrix(self):
        partition = np.array([0, 1, 0, 1, 2])
        matrix = build_consensus_matrix([partition] * 4)
        assert set(np.unique(matrix)).issubset({0.0, 1.0})

    def test_consensus_clustering_recovers_shared_structure(self):
        rng = np.random.default_rng(0)
        truth = np.repeat([0, 1, 2], 10)
        partitions = []
        for _ in range(5):
            noisy = truth.copy()
            flips = rng.choice(30, size=3, replace=False)
            noisy[flips] = rng.integers(0, 3, size=3)
            partitions.append(noisy)
        labels, matrix = consensus_clustering(partitions, 3, random_state=0)
        assert adjusted_rand_index(truth, labels) > 0.8
        assert matrix.shape == (30, 30)

    def test_label_permutations_do_not_matter(self):
        base = np.array([0, 0, 1, 1, 2, 2])
        permuted = np.array([2, 2, 0, 0, 1, 1])
        matrix = build_consensus_matrix([base, permuted])
        assert set(np.unique(matrix)).issubset({0.0, 1.0})
        assert matrix[0, 1] == 1.0

    def test_errors(self):
        with pytest.raises(ValidationError):
            build_consensus_matrix([])
        with pytest.raises(ValidationError):
            build_consensus_matrix([np.array([0, 1]), np.array([0, 1, 2])])
        with pytest.raises(ValidationError):
            consensus_clustering([np.array([0, 1, 0])], 5)


class TestInterpretabilityScores:
    def test_consistency_is_clipped_ari(self):
        assert consistency_score([0, 0, 1, 1], [1, 1, 0, 0]) == pytest.approx(1.0)
        assert consistency_score([0, 1, 0, 1], [0, 0, 1, 1]) >= 0.0

    def test_scores_for_fitted_model(self, fitted_kgraph):
        result = fitted_kgraph.result_
        scores = interpretability_scores(result.graphs, result.partitions, result.labels)
        assert len(scores) == len(result.graphs)
        for score in scores:
            assert 0.0 <= score.consistency <= 1.0
            assert 0.0 <= score.interpretability <= 1.0
            assert score.combined == pytest.approx(score.consistency * score.interpretability)

    def test_select_optimal_length_maximises_product(self):
        scores = [
            LengthScore(8, 0.5, 0.5),
            LengthScore(16, 0.9, 0.8),
            LengthScore(32, 1.0, 0.1),
        ]
        assert select_optimal_length(scores) == 16

    def test_tie_broken_by_shorter_length(self):
        scores = [LengthScore(32, 0.8, 0.5), LengthScore(8, 0.5, 0.8)]
        assert select_optimal_length(scores) == 8

    def test_degenerate_scores_fall_back_to_interpretability(self):
        scores = [LengthScore(8, 0.0, 0.2), LengthScore(16, 0.0, 0.7)]
        assert select_optimal_length(scores) == 16

    def test_empty_scores_rejected(self):
        with pytest.raises(ValidationError):
            select_optimal_length([])

    def test_missing_partition_detected(self, fitted_kgraph):
        result = fitted_kgraph.result_
        with pytest.raises(ValidationError):
            interpretability_scores(result.graphs, result.partitions[:-1], result.labels)
