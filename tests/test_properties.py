"""Property-based tests (hypothesis) for core invariants.

These cover the mathematical properties the rest of the system relies on:
metric symmetry and bounds, permutation invariance of partition measures,
consensus-matrix structure, normalisation idempotence and graphoid
monotonicity.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.consensus import build_consensus_matrix
from repro.graph.graphoid import extract_gamma_graphoid, extract_lambda_graphoid
from repro.metrics.clustering import (
    adjusted_rand_index,
    normalized_mutual_information,
    purity_score,
    rand_index,
)
from repro.metrics.distances import dtw_distance, euclidean_distance, sbd_distance
from repro.utils.normalization import znormalize
from repro.utils.windows import sliding_window_matrix

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
finite_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)


def series_strategy(min_size=4, max_size=40):
    return arrays(dtype=np.float64, shape=st.integers(min_size, max_size), elements=finite_floats)


def labels_strategy(n):
    return st.lists(st.integers(0, 4), min_size=n, max_size=n)


# ---------------------------------------------------------------------------
# distance properties
# ---------------------------------------------------------------------------
class TestDistanceProperties:
    @given(series_strategy())
    @settings(max_examples=30, deadline=None)
    def test_self_distance_zero(self, series):
        assert euclidean_distance(series, series) == pytest.approx(0.0, abs=1e-9)
        assert dtw_distance(series, series) == pytest.approx(0.0, abs=1e-9)

    @given(series_strategy(8, 32), series_strategy(8, 32))
    @settings(max_examples=30, deadline=None)
    def test_sbd_bounds_and_symmetry(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        d_ab = sbd_distance(a, b)
        d_ba = sbd_distance(b, a)
        assert 0.0 - 1e-9 <= d_ab <= 2.0 + 1e-9
        assert d_ab == pytest.approx(d_ba, abs=1e-7)

    @given(series_strategy(8, 32), series_strategy(8, 32))
    @settings(max_examples=30, deadline=None)
    def test_euclidean_symmetry_and_nonnegativity(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        assert euclidean_distance(a, b) >= 0.0
        assert euclidean_distance(a, b) == pytest.approx(euclidean_distance(b, a))

    @given(series_strategy(8, 32))
    @settings(max_examples=30, deadline=None)
    def test_dtw_never_exceeds_euclidean(self, series):
        rng = np.random.default_rng(0)
        other = series + rng.normal(0, 1.0, size=series.shape[0])
        assert dtw_distance(series, other) <= euclidean_distance(series, other) + 1e-9


# ---------------------------------------------------------------------------
# clustering-measure properties
# ---------------------------------------------------------------------------
class TestPartitionMeasureProperties:
    @given(st.integers(5, 30).flatmap(lambda n: st.tuples(labels_strategy(n), labels_strategy(n))))
    @settings(max_examples=40, deadline=None)
    def test_symmetry_and_bounds(self, pair):
        a, b = pair
        assert adjusted_rand_index(a, b) == pytest.approx(adjusted_rand_index(b, a), abs=1e-9)
        assert -1.0 - 1e-9 <= adjusted_rand_index(a, b) <= 1.0 + 1e-9
        assert 0.0 <= rand_index(a, b) <= 1.0
        assert 0.0 <= normalized_mutual_information(a, b) <= 1.0
        assert 0.0 <= purity_score(a, b) <= 1.0

    @given(st.integers(5, 30).flatmap(labels_strategy))
    @settings(max_examples=40, deadline=None)
    def test_self_agreement_is_perfect(self, labels):
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)
        assert purity_score(labels, labels) == pytest.approx(1.0)

    @given(
        st.integers(5, 25).flatmap(labels_strategy),
        st.permutations(list(range(5))),
    )
    @settings(max_examples=40, deadline=None)
    def test_label_permutation_invariance(self, labels, permutation):
        renamed = [permutation[value] for value in labels]
        assert adjusted_rand_index(labels, renamed) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# consensus-matrix properties
# ---------------------------------------------------------------------------
class TestConsensusProperties:
    @given(
        st.integers(4, 15).flatmap(
            lambda n: st.lists(labels_strategy(n), min_size=1, max_size=5)
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_consensus_matrix_structure(self, partitions):
        matrix = build_consensus_matrix([np.asarray(p) for p in partitions])
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)
        assert np.all(matrix >= -1e-12) and np.all(matrix <= 1.0 + 1e-12)


# ---------------------------------------------------------------------------
# normalisation / windowing properties
# ---------------------------------------------------------------------------
class TestTransformProperties:
    @given(series_strategy(4, 60))
    @settings(max_examples=40, deadline=None)
    def test_znormalize_idempotent(self, series):
        once = znormalize(series)
        twice = znormalize(once)
        assert np.allclose(once, twice, atol=1e-7)

    @given(series_strategy(4, 60))
    @settings(max_examples=40, deadline=None)
    def test_znormalize_output_stats(self, series):
        normalized = znormalize(series)
        assert abs(float(normalized.mean())) < 1e-6
        std = float(normalized.std())
        assert std == pytest.approx(1.0, abs=1e-6) or std == 0.0

    @given(series_strategy(10, 60), st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_sliding_windows_reconstruct_series(self, series, window):
        window = min(window, series.shape[0])
        windows = sliding_window_matrix(series, window)
        assert windows.shape == (series.shape[0] - window + 1, window)
        # First column equals the series prefix; every window is a contiguous slice.
        assert np.allclose(windows[:, 0], series[: windows.shape[0]])
        for offset in range(windows.shape[0]):
            assert np.allclose(windows[offset], series[offset: offset + window])


# ---------------------------------------------------------------------------
# graphoid monotonicity on a real fitted model
# ---------------------------------------------------------------------------
class TestGraphoidProperties:
    @given(low=st.floats(0.0, 1.0), high=st.floats(0.0, 1.0))
    @settings(max_examples=25, deadline=None)
    def test_threshold_monotonicity(self, fitted_kgraph, low, high):
        low, high = sorted((low, high))
        graph = fitted_kgraph.result_.optimal_graph
        labels = fitted_kgraph.result_.labels
        cluster = int(labels[0])
        loose_gamma = extract_gamma_graphoid(graph, labels, cluster, low)
        strict_gamma = extract_gamma_graphoid(graph, labels, cluster, high)
        assert set(strict_gamma.nodes) <= set(loose_gamma.nodes)
        loose_lambda = extract_lambda_graphoid(graph, labels, cluster, low)
        strict_lambda = extract_lambda_graphoid(graph, labels, cluster, high)
        assert set(strict_lambda.nodes) <= set(loose_lambda.nodes)
