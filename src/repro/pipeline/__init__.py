"""Composable, resumable stage pipelines (the k-Graph orchestration layer).

``repro.pipeline`` turns the monolithic "one big fit" into an
orchestratable system:

* :class:`Stage` — one named, cacheable unit of work with declared
  ``inputs`` / ``outputs`` / ``config_keys`` (:mod:`repro.pipeline.stage`);
* :class:`Pipeline` — executes a validated DAG of stages in topological
  order, timing each under ``stage:<name>`` and checkpointing outputs
  through a content-addressed :class:`StageCache`
  (:mod:`repro.pipeline.runner`, :mod:`repro.pipeline.cache`);
* :mod:`repro.pipeline.kgraph_stages` — the paper's five k-Graph steps as
  concrete stages plus :func:`build_kgraph_pipeline`.

A re-run with one changed parameter re-executes only the stages whose
content-addressed key changed (and everything downstream); per-stage
execution backends are selectable via ``stage_backends=`` /
``--stage-backend`` (see :func:`stage_backend_scope`).
"""

from repro.pipeline.cache import (
    DISK_CACHE_POLICIES,
    CacheEntryMeta,
    CacheStats,
    DiskStageCache,
    MemoryStageCache,
    StageCache,
    resolve_stage_cache,
)
from repro.pipeline.fingerprint import fingerprint
from repro.pipeline.kgraph_stages import (
    KGRAPH_SEED_INPUTS,
    KGRAPH_STAGE_NAMES,
    ConsensusStage,
    EmbedStage,
    GraphClusterStage,
    InterpretabilityStage,
    LengthSelectionStage,
    build_kgraph_pipeline,
    kgraph_pipeline_config,
)
from repro.pipeline.runner import Pipeline, PipelineReport, StageRecord
from repro.pipeline.stage import PipelineContext, Stage, stage_backend_scope

__all__ = [
    "CacheEntryMeta",
    "DISK_CACHE_POLICIES",
    "CacheStats",
    "ConsensusStage",
    "DiskStageCache",
    "EmbedStage",
    "GraphClusterStage",
    "InterpretabilityStage",
    "KGRAPH_SEED_INPUTS",
    "KGRAPH_STAGE_NAMES",
    "LengthSelectionStage",
    "MemoryStageCache",
    "Pipeline",
    "PipelineContext",
    "PipelineReport",
    "Stage",
    "StageCache",
    "StageRecord",
    "build_kgraph_pipeline",
    "fingerprint",
    "kgraph_pipeline_config",
    "resolve_stage_cache",
    "stage_backend_scope",
]
