"""DiskStageCache economics (budgets, eviction policies, the ledger) and
crash consistency.

The contract under test:

* after **any** ``put`` on a budgeted cache, the committed footprint never
  exceeds ``budget_bytes`` (property-tested with randomised payload sizes);
* LRU evicts the least recently touched entry, LFU keeps the hottest one;
* the ``_index.json`` ledger is advisory — corrupting or deleting it, or
  killing a writer mid-``put``, degrades to a cache miss and a rebuilt
  ledger, never to a wrong replay;
* concurrent readers sharing the directory see evictions as plain misses.
"""

import json
import os

import numpy as np
import pytest

from repro.exceptions import PipelineError
from repro.pipeline import (
    DISK_CACHE_POLICIES,
    DiskStageCache,
    MemoryStageCache,
    resolve_stage_cache,
)
from repro.pipeline.cache import CacheEntryMeta


def _put(cache, key, n_bytes=1000, stage="s"):
    cache.put(
        key,
        {"blob": np.zeros(max(1, n_bytes // 8))},
        CacheEntryMeta(key=key, stage=stage, outputs=["blob"]),
    )


def _disk_footprint(directory) -> int:
    return sum(
        path.stat().st_size
        for path in directory.iterdir()
        if path.suffix in (".pkl", ".json") and path.name != DiskStageCache.INDEX_NAME
    )


class TestBudgetEnforcement:
    def test_budget_never_exceeded_after_any_put(self, tmp_path):
        """Property: randomised put sequence, footprint <= budget throughout."""
        rng = np.random.default_rng(42)
        budget = 30_000
        cache = DiskStageCache(tmp_path, budget_bytes=budget, policy="lru")
        for step in range(40):
            _put(cache, f"key{step}", n_bytes=int(rng.integers(100, 12_000)))
            assert cache.total_bytes() <= budget
            assert _disk_footprint(tmp_path) <= budget
        assert cache.counters.evictions > 0
        assert cache.stats()["evictions"] == cache.counters.evictions

    def test_oversized_single_entry_is_evicted_immediately(self, tmp_path):
        cache = DiskStageCache(tmp_path, budget_bytes=2_000)
        _put(cache, "huge", n_bytes=50_000)
        assert cache.total_bytes() <= 2_000
        assert cache.get("huge") is None

    def test_lru_evicts_least_recently_touched(self, tmp_path):
        cache = DiskStageCache(tmp_path, budget_bytes=25_000, policy="lru")
        _put(cache, "old", n_bytes=10_000)
        _put(cache, "warm", n_bytes=10_000)
        assert cache.get("old") is not None  # refresh recency of "old"
        _put(cache, "new", n_bytes=10_000)  # must push out "warm"
        assert cache.get("warm") is None
        assert cache.get("old") is not None
        assert cache.get("new") is not None

    def test_lfu_keeps_the_hot_entry(self, tmp_path):
        cache = DiskStageCache(tmp_path, budget_bytes=25_000, policy="lfu")
        _put(cache, "hot", n_bytes=10_000)
        _put(cache, "cold", n_bytes=10_000)
        for _ in range(3):
            assert cache.get("hot") is not None
        _put(cache, "new", n_bytes=10_000)
        assert cache.get("hot") is not None
        assert cache.get("cold") is None

    def test_evict_to_shrinks_an_unbounded_cache(self, tmp_path):
        cache = DiskStageCache(tmp_path)
        for index in range(4):
            _put(cache, f"key{index}", n_bytes=5_000)
        before = cache.total_bytes()
        evicted = cache.evict_to(before // 2)
        assert evicted >= 1
        assert cache.total_bytes() <= before // 2
        with pytest.raises(PipelineError):
            cache.evict_to(-1)

    def test_stats_reports_occupancy_and_counters(self, tmp_path):
        cache = DiskStageCache(tmp_path, budget_bytes=50_000, policy="lfu")
        _put(cache, "k")
        cache.get("k")
        cache.get("absent")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["total_bytes"] == cache.total_bytes() > 0
        assert stats["budget_bytes"] == 50_000
        assert stats["policy"] == "lfu"
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["stores"] == 1
        # MemoryStageCache exposes the same interface.
        memory = MemoryStageCache(max_entries=8)
        assert memory.stats()["entries"] == 0
        assert memory.stats()["max_entries"] == 8

    def test_validation(self, tmp_path):
        assert set(DISK_CACHE_POLICIES) == {"lru", "lfu"}
        with pytest.raises(PipelineError):
            DiskStageCache(tmp_path, policy="fifo")
        with pytest.raises(PipelineError):
            DiskStageCache(tmp_path, budget_bytes=0)
        with pytest.raises(PipelineError):
            resolve_stage_cache(None, budget_bytes=1000)
        with pytest.raises(PipelineError):
            resolve_stage_cache(MemoryStageCache(), budget_bytes=1000)
        bounded = resolve_stage_cache(tmp_path / "c", budget_bytes=1000, policy="lfu")
        assert bounded.budget_bytes == 1000 and bounded.policy == "lfu"


class TestCrashConsistency:
    def test_corrupt_index_rebuilds_from_meta_files(self, tmp_path):
        cache = DiskStageCache(tmp_path, budget_bytes=100_000)
        _put(cache, "a", n_bytes=2_000)
        _put(cache, "b", n_bytes=2_000)
        (tmp_path / DiskStageCache.INDEX_NAME).write_text("{ not json !")
        reopened = DiskStageCache(tmp_path, budget_bytes=100_000)
        assert reopened.stats()["entries"] == 2
        assert reopened.get("a") is not None
        assert reopened.get("b") is not None
        assert reopened.total_bytes() == _disk_footprint(tmp_path)

    def test_missing_index_rebuilds(self, tmp_path):
        cache = DiskStageCache(tmp_path)
        _put(cache, "a")
        os.unlink(tmp_path / DiskStageCache.INDEX_NAME)
        reopened = DiskStageCache(tmp_path)
        assert reopened.get("a") is not None
        assert reopened.total_bytes() > 0

    def test_index_listing_wrong_keys_degrades_to_rebuild(self, tmp_path):
        cache = DiskStageCache(tmp_path)
        _put(cache, "real")
        (tmp_path / DiskStageCache.INDEX_NAME).write_text(
            json.dumps({"version": 1, "entries": {"ghost": {"size": "NaN!"}}})
        )
        reopened = DiskStageCache(tmp_path)
        assert reopened.get("real") is not None
        assert "ghost" not in reopened._index

    def test_kill_mid_put_leaves_only_a_miss(self, tmp_path):
        """A payload without its meta marker (writer died between the two
        atomic renames) must read as a miss, and a later put must recover."""
        cache = DiskStageCache(tmp_path)
        _put(cache, "done")
        # Simulate the crash: payload committed, meta never written.
        (tmp_path / "half.pkl").write_bytes(b"\x80\x04K\x01.")
        # And the earlier window: an orphan tmp file from _write_atomic.
        (tmp_path / "other.pkl.abc123.tmp").write_bytes(b"partial")
        reopened = DiskStageCache(tmp_path)
        assert reopened.get("half") is None
        assert reopened.get("done") is not None
        _put(reopened, "half", n_bytes=500)
        assert reopened.get("half") is not None
        reopened.clear()  # clear also sweeps the orphan tmp file
        assert not (tmp_path / "other.pkl.abc123.tmp").exists()

    def test_truncated_payload_is_a_miss_then_recoverable(self, tmp_path):
        cache = DiskStageCache(tmp_path)
        _put(cache, "key", n_bytes=4_000)
        payload = tmp_path / "key.pkl"
        payload.write_bytes(payload.read_bytes()[:100])  # torn write
        reopened = DiskStageCache(tmp_path)
        assert reopened.get("key") is None
        _put(reopened, "key", n_bytes=400)
        assert reopened.get("key") is not None

    def test_concurrent_reader_sees_eviction_as_a_miss(self, tmp_path):
        writer = DiskStageCache(tmp_path, budget_bytes=15_000, policy="lru")
        reader = DiskStageCache(tmp_path)
        _put(writer, "first", n_bytes=10_000)
        assert reader.get("first") is not None
        _put(writer, "second", n_bytes=10_000)  # evicts "first"
        assert reader.get("first") is None
        assert reader.get("second") is not None

    def test_concurrent_writer_entries_are_adopted_into_the_ledger(self, tmp_path):
        ours = DiskStageCache(tmp_path, budget_bytes=1_000_000)
        theirs = DiskStageCache(tmp_path)
        _put(theirs, "foreign", n_bytes=3_000)
        assert ours.get("foreign") is not None  # adopted on first touch
        assert ours.total_bytes() >= 3_000
