"""Bit-identical equivalence of the vectorized hot paths vs their references.

Every hot path vectorized for E13 retains its original implementation as a
``*_reference`` twin; these tests assert the two produce *bit-identical*
outputs (``np.array_equal``, payload equality — not approx) on random and
adversarial inputs: distance ties, single-node graphs, stride > 1 and
constant series.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.consensus import (
    build_consensus_matrix,
    build_consensus_matrix_reference,
)
from repro.core.kgraph import (
    KGraph,
    PredictionState,
    predict_with_state,
    predict_with_state_reference,
)
from repro.datasets import generate_dataset
from repro.graph.embedding import GraphEmbedding
from repro.graph.structure import TimeSeriesGraph
from repro.linalg.kernels import knn_affinity, knn_affinity_reference
from repro.metrics.distances import (
    dtw_distance,
    dtw_distance_reference,
    pairwise_distances,
    pairwise_distances_reference,
)

METRICS = ("euclidean", "zeuclidean", "sbd", "dtw")


def _random_walks(n_series: int, length: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n_series, length)).cumsum(axis=1)


# --------------------------------------------------------------------- #
# DTW
# --------------------------------------------------------------------- #
class TestDTWEquivalence:
    @pytest.mark.parametrize("shape", [(1, 1), (1, 7), (9, 9), (13, 8), (64, 64)])
    @pytest.mark.parametrize("window", [None, 0, 1, 5, 1000])
    def test_random_pairs(self, shape, window):
        rng = np.random.default_rng(sum(shape) + (window or 0))
        a, b = rng.normal(size=shape[0]), rng.normal(size=shape[1])
        assert dtw_distance(a, b, window=window) == dtw_distance_reference(
            a, b, window=window
        )

    def test_constant_series(self):
        a, b = np.zeros(12), np.full(12, 3.0)
        assert dtw_distance(a, b) == dtw_distance_reference(a, b)
        assert dtw_distance(a, a) == 0.0

    def test_tied_costs(self):
        # Repeated values create many equal-cost cells and min ties.
        a = np.array([1.0, 1.0, 2.0, 2.0, 1.0, 1.0])
        b = np.array([2.0, 2.0, 1.0, 1.0, 2.0, 2.0])
        for window in (None, 1, 2):
            assert dtw_distance(a, b, window=window) == dtw_distance_reference(
                a, b, window=window
            )

    def test_negative_window_rejected(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            dtw_distance([1.0, 2.0], [1.0, 2.0], window=-2)


# --------------------------------------------------------------------- #
# pairwise distances
# --------------------------------------------------------------------- #
class TestPairwiseEquivalence:
    @pytest.mark.parametrize("metric", METRICS)
    def test_random(self, metric):
        data = _random_walks(17, 48, seed=1)
        # The euclidean default is the gram-matrix GEMM fast path;
        # exact=True selects the bit-identical direct-difference kernel.
        exact = {"exact": True} if metric == "euclidean" else {}
        assert np.array_equal(
            pairwise_distances(data, metric=metric, **exact),
            pairwise_distances_reference(data, metric=metric),
        )

    def test_euclidean_gram_default_close_to_exact(self):
        data = _random_walks(17, 48, seed=1)
        gram = pairwise_distances(data, metric="euclidean")
        precise = pairwise_distances(data, metric="euclidean", exact=True)
        # The gram trick loses a few ulps to cancellation (notably a
        # not-exactly-zero diagonal) — long-standing fast-path behaviour.
        np.testing.assert_allclose(gram, precise, atol=1e-6)
        assert np.array_equal(gram, gram.T)

    @pytest.mark.parametrize("metric", METRICS)
    def test_adversarial_rows(self, metric):
        rng = np.random.default_rng(2)
        row = rng.normal(size=24)
        data = np.vstack(
            [
                np.zeros(24),  # degenerate norms (SBD) and zero variance
                np.full(24, 5.0),  # constant, non-zero
                row,
                row,  # exact duplicate -> zero distances and ties
                -row,
                rng.normal(size=24),
            ]
        )
        exact = {"exact": True} if metric == "euclidean" else {}
        assert np.array_equal(
            pairwise_distances(data, metric=metric, **exact),
            pairwise_distances_reference(data, metric=metric),
        )

    def test_dtw_window_kwarg(self):
        data = _random_walks(9, 30, seed=3)
        assert np.array_equal(
            pairwise_distances(data, metric="dtw", window=2),
            pairwise_distances_reference(data, metric="dtw", window=2),
        )

    @pytest.mark.parametrize("metric", ("euclidean", "dtw"))
    def test_tiny_blocks_match_unblocked(self, metric):
        data = _random_walks(11, 26, seed=4)
        exact = {"exact": True} if metric == "euclidean" else {}
        assert np.array_equal(
            pairwise_distances(data, metric=metric, block_size=2, **exact),
            pairwise_distances(data, metric=metric, **exact),
        )

    def test_single_row(self):
        data = np.arange(10.0)[None, :]
        for metric in METRICS:
            assert np.array_equal(
                pairwise_distances(data, metric=metric), np.zeros((1, 1))
            )


# --------------------------------------------------------------------- #
# k-NN affinity
# --------------------------------------------------------------------- #
class TestKnnAffinityEquivalence:
    @pytest.mark.parametrize("n_neighbors", [1, 3, 10, 50])
    def test_random(self, n_neighbors):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(30, 6))
        assert np.array_equal(
            knn_affinity(data, n_neighbors=n_neighbors),
            knn_affinity_reference(data, n_neighbors=n_neighbors),
        )

    @pytest.mark.parametrize("n_neighbors", [1, 2, 4, 7])
    def test_distance_ties_on_grid(self, n_neighbors):
        # Integer grid points produce many exactly-tied distances; both
        # implementations must break ties by the smaller column index.
        xs, ys = np.meshgrid(np.arange(5.0), np.arange(5.0))
        data = np.column_stack([xs.ravel(), ys.ravel()])
        assert np.array_equal(
            knn_affinity(data, n_neighbors=n_neighbors),
            knn_affinity_reference(data, n_neighbors=n_neighbors),
        )

    def test_duplicate_points(self):
        data = np.array([[0.0, 0.0], [0.0, 0.0], [0.0, 0.0], [1.0, 1.0]])
        for n_neighbors in (1, 2, 3):
            assert np.array_equal(
                knn_affinity(data, n_neighbors=n_neighbors),
                knn_affinity_reference(data, n_neighbors=n_neighbors),
            )

    def test_symmetric_binary(self):
        rng = np.random.default_rng(6)
        data = rng.normal(size=(20, 3))
        affinity = knn_affinity(data, n_neighbors=4)
        assert np.array_equal(affinity, affinity.T)
        assert set(np.unique(affinity)) <= {0.0, 1.0}


# --------------------------------------------------------------------- #
# consensus matrix
# --------------------------------------------------------------------- #
class TestConsensusEquivalence:
    def test_random_partitions(self):
        rng = np.random.default_rng(7)
        partitions = [rng.integers(0, 4, size=60) for _ in range(9)]
        assert np.array_equal(
            build_consensus_matrix(partitions),
            build_consensus_matrix_reference(partitions),
        )

    def test_degenerate_partitions(self):
        # Single cluster, singleton clusters, and non-contiguous label ids.
        partitions = [
            np.zeros(12, dtype=int),
            np.arange(12),
            np.array([5, 5, 9, 9, 5, 9, 5, 5, 9, 9, 9, 5]),
        ]
        assert np.array_equal(
            build_consensus_matrix(partitions),
            build_consensus_matrix_reference(partitions),
        )


# --------------------------------------------------------------------- #
# graph embedding / bulk recording
# --------------------------------------------------------------------- #
def _assert_graphs_identical(left: TimeSeriesGraph, right: TimeSeriesGraph) -> None:
    assert left.to_payload() == right.to_payload()
    for node in left.nodes():
        assert np.array_equal(left.node_pattern(node), right.node_pattern(node))


class TestEmbeddingEquivalence:
    @pytest.mark.parametrize("stride", [1, 2, 5])
    def test_random_walks(self, stride):
        data = _random_walks(10, 72, seed=8)
        vectorized = GraphEmbedding(12, stride=stride, random_state=0).fit(data)
        reference = GraphEmbedding(
            12, stride=stride, random_state=0, vectorized=False
        ).fit(data)
        _assert_graphs_identical(vectorized, reference)

    def test_constant_series_single_node_graph(self):
        # All-constant series z-normalise to zero subsequences: the radial
        # scan collapses to one node and every transition is a self-loop.
        data = np.ones((6, 30))
        vectorized = GraphEmbedding(6, random_state=0).fit(data)
        reference = GraphEmbedding(6, random_state=0, vectorized=False).fit(data)
        _assert_graphs_identical(vectorized, reference)
        assert vectorized.n_nodes == 1
        assert vectorized.edges() == [(0, 0)]

    def test_mixed_constant_and_random(self):
        rng = np.random.default_rng(9)
        data = np.vstack(
            [np.zeros(40), np.full(40, 2.5), rng.normal(size=(4, 40)).cumsum(axis=1)]
        )
        vectorized = GraphEmbedding(8, random_state=0).fit(data)
        reference = GraphEmbedding(8, random_state=0, vectorized=False).fit(data)
        _assert_graphs_identical(vectorized, reference)


class TestBulkRecordingEquivalence:
    def _empty_graph(self, n_nodes: int, n_series: int) -> TimeSeriesGraph:
        graph = TimeSeriesGraph(length=4, n_series=n_series)
        for node in range(n_nodes):
            graph.add_node(node, (float(node), 0.0), np.zeros(4))
        return graph

    def test_bulk_matches_loop(self):
        rng = np.random.default_rng(10)
        nodes = rng.integers(0, 5, size=200)
        series = np.sort(rng.integers(0, 7, size=200))
        bulk = self._empty_graph(5, 7)
        bulk.add_visits(nodes, series)
        same = series[1:] == series[:-1]
        bulk.add_transitions(nodes[:-1][same], nodes[1:][same], series[1:][same])

        loop = self._empty_graph(5, 7)
        previous_series = previous_node = -1
        for node, series_id in zip(nodes.tolist(), series.tolist()):
            loop.record_visit(node, series_id)
            if series_id == previous_series:
                loop.record_transition(previous_node, node, series_id)
            previous_series, previous_node = series_id, node
        assert bulk.to_payload() == loop.to_payload()

    def test_bulk_validation(self):
        from repro.exceptions import GraphConstructionError, ValidationError

        graph = self._empty_graph(2, 2)
        with pytest.raises(GraphConstructionError):
            graph.add_visits([0, 9], [0, 1])
        with pytest.raises(GraphConstructionError):
            graph.add_transitions([0, 0], [1, 9], [0, 0])
        with pytest.raises(ValidationError):
            graph.add_visits([0, 1], [0])
        with pytest.raises(ValidationError):
            graph.add_transitions([0], [1, 0], [0])
        # Empty bulk calls are no-ops.
        graph.add_visits([], [])
        graph.add_transitions([], [], [])
        assert graph.node_weight(0) == 0


# --------------------------------------------------------------------- #
# batched prediction
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def fitted_model() -> KGraph:
    dataset = generate_dataset("cylinder_bell_funnel", random_state=0)
    model = KGraph(n_clusters=3, n_lengths=3, random_state=0)
    model.fit(dataset.data)
    return model


class TestBatchedPredictEquivalence:
    def test_batched_matches_reference(self, fitted_model):
        rng = np.random.default_rng(11)
        state = fitted_model.prediction_state()
        data = rng.normal(size=(16, 128)).cumsum(axis=1)
        assert np.array_equal(
            predict_with_state(state, data),
            predict_with_state_reference(state, data),
        )

    def test_single_series_and_empty_batch(self, fitted_model):
        state = fitted_model.prediction_state()
        rng = np.random.default_rng(12)
        one = rng.normal(size=(1, 128))
        assert np.array_equal(
            predict_with_state(state, one), predict_with_state_reference(state, one)
        )
        assert predict_with_state(state, np.empty((0, 128))).shape == (0,)

    def test_constant_series_ties(self, fitted_model):
        # Constant series z-normalise to zero windows: every node pattern is
        # equidistant, so argmin tie-breaks must agree between the paths.
        state = fitted_model.prediction_state()
        data = np.vstack([np.zeros(128), np.full(128, 4.0)])
        assert np.array_equal(
            predict_with_state(state, data),
            predict_with_state_reference(state, data),
        )

    def test_stride_greater_than_one(self):
        dataset = generate_dataset("cylinder_bell_funnel", random_state=1)
        model = KGraph(n_clusters=3, n_lengths=3, stride=3, random_state=1)
        model.fit(dataset.data)
        state = model.prediction_state()
        rng = np.random.default_rng(13)
        data = rng.normal(size=(8, dataset.data.shape[1])).cumsum(axis=1)
        assert state.stride == 3
        assert np.array_equal(
            predict_with_state(state, data),
            predict_with_state_reference(state, data),
        )

    def test_blocked_batches_match_single_block(self, fitted_model, monkeypatch):
        # Force the bounded-memory path to split the batch into many row
        # blocks; predictions must not depend on the block boundaries.
        import repro.core.kgraph as kgraph_module

        state = fitted_model.prediction_state()
        rng = np.random.default_rng(15)
        data = rng.normal(size=(13, 128)).cumsum(axis=1)
        expected = predict_with_state(state, data)
        monkeypatch.setattr(kgraph_module, "_PREDICT_BLOCK_BYTES", 1)
        assert np.array_equal(predict_with_state(state, data), expected)
        assert np.array_equal(
            predict_with_state(state, data),
            predict_with_state_reference(state, data),
        )

    def test_predict_uses_batched_path(self, fitted_model):
        dataset = generate_dataset("cylinder_bell_funnel", random_state=0)
        state = fitted_model.prediction_state()
        assert np.array_equal(
            fitted_model.predict(dataset.data[:5]),
            predict_with_state_reference(state, dataset.data[:5]),
        )


class TestPredictionStateHoisting:
    def test_precomputed_norms_populated(self, fitted_model):
        state = fitted_model.prediction_state()
        assert np.array_equal(state.patterns_sq, np.sum(state.patterns**2, axis=1))
        assert np.array_equal(state.centroids_sq, np.sum(state.centroids**2, axis=1))

    def test_predict_consumes_hoisted_norms(self, fitted_model):
        # Micro-test for the hoist: corrupting the precomputed norms must
        # change predictions, proving predict_with_state reads them instead
        # of re-deriving the values per call.
        state = fitted_model.prediction_state()
        rng = np.random.default_rng(14)
        data = rng.normal(size=(12, 128)).cumsum(axis=1)
        baseline = predict_with_state(state, data)

        skewed = PredictionState(
            length=state.length,
            stride=state.stride,
            patterns=state.patterns,
            patterns_sq=state.patterns_sq + 1e6 * rng.random(state.patterns_sq.shape),
            centroids=state.centroids,
            centroids_sq=state.centroids_sq,
            clusters=state.clusters,
        )
        assert not np.array_equal(predict_with_state(skewed, data), baseline)

        skewed_centroids = PredictionState(
            length=state.length,
            stride=state.stride,
            patterns=state.patterns,
            patterns_sq=state.patterns_sq,
            centroids=state.centroids,
            centroids_sq=state.centroids_sq + np.linspace(50.0, -50.0, state.centroids_sq.shape[0]),
            clusters=state.clusters,
        )
        assert not np.array_equal(
            predict_with_state(skewed_centroids, data), baseline
        )
