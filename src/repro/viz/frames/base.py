"""HTML building blocks shared by every Graphint frame."""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exceptions import VisualizationError


@dataclass
class Panel:
    """One titled sub-window of a frame (an SVG plot, a table, or text)."""

    title: str
    svg: Optional[str] = None
    html_body: Optional[str] = None
    caption: str = ""

    def to_html(self) -> str:
        """Render the panel as a ``<div class="panel">`` block."""
        if self.svg is None and self.html_body is None:
            raise VisualizationError(f"panel {self.title!r} has no content")
        body = self.svg if self.svg is not None else self.html_body
        caption = (
            f'<p class="caption">{html.escape(self.caption)}</p>' if self.caption else ""
        )
        return (
            '<div class="panel">'
            f"<h3>{html.escape(self.title)}</h3>"
            f"{body}"
            f"{caption}"
            "</div>"
        )


@dataclass
class Frame:
    """A full Graphint frame: a title, an intro paragraph and a set of panels."""

    frame_id: str
    title: str
    description: str = ""
    panels: List[Panel] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_panel(self, panel: Panel) -> None:
        """Append a panel to the frame."""
        self.panels.append(panel)

    def to_html(self) -> str:
        """Render the frame as a ``<section>`` with a flexbox panel grid."""
        if not self.panels:
            raise VisualizationError(f"frame {self.frame_id!r} has no panels")
        panels_html = "\n".join(panel.to_html() for panel in self.panels)
        description = (
            f'<p class="frame-description">{html.escape(self.description)}</p>'
            if self.description
            else ""
        )
        return (
            f'<section class="frame" id="{html.escape(self.frame_id)}">'
            f"<h2>{html.escape(self.title)}</h2>"
            f"{description}"
            f'<div class="panel-grid">{panels_html}</div>'
            "</section>"
        )


def html_table(
    rows: Sequence[Dict[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.3f}",
    max_rows: int = 200,
) -> str:
    """Render a list of dictionaries as an HTML table."""
    if not rows:
        raise VisualizationError("html_table needs at least one row")
    if columns is None:
        columns = list(rows[0].keys())
    header = "".join(f"<th>{html.escape(str(column))}</th>" for column in columns)
    body_rows = []
    for row in list(rows)[:max_rows]:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                value = float_format.format(value)
            cells.append(f"<td>{html.escape(str(value))}</td>")
        body_rows.append("<tr>" + "".join(cells) + "</tr>")
    return (
        '<table class="data-table">'
        f"<thead><tr>{header}</tr></thead>"
        f"<tbody>{''.join(body_rows)}</tbody>"
        "</table>"
    )
