"""The five Graphint frames (Fig. 2 / Fig. 3), rendered as HTML fragments.

Each frame builder takes the relevant fitted artifacts (dataset, a fitted
:class:`~repro.core.kgraph.KGraph`, baseline labels, benchmark results, ...)
and returns a :class:`~repro.viz.frames.base.Frame` whose ``to_html()`` is a
self-contained ``<section>`` ready to be embedded in the dashboard.
"""

from repro.viz.frames.base import Frame, Panel
from repro.viz.frames.clustering_comparison import build_clustering_comparison_frame
from repro.viz.frames.benchmark import build_benchmark_frame
from repro.viz.frames.graph_frame import build_graph_frame
from repro.viz.frames.interpretability import build_interpretability_frame
from repro.viz.frames.under_the_hood import build_under_the_hood_frame

__all__ = [
    "Frame",
    "Panel",
    "build_benchmark_frame",
    "build_clustering_comparison_frame",
    "build_graph_frame",
    "build_interpretability_frame",
    "build_under_the_hood_frame",
]
