"""Unit tests for external clustering-quality measures."""

import numpy as np
import pytest

from repro.metrics import evaluate_measure
from repro.metrics.clustering import (
    adjusted_mutual_information,
    adjusted_rand_index,
    clustering_report,
    completeness_score,
    expected_mutual_information,
    fowlkes_mallows_index,
    homogeneity_score,
    mutual_information,
    normalized_mutual_information,
    purity_score,
    rand_index,
    v_measure_score,
)
from repro.metrics.contingency import contingency_matrix, pair_confusion_matrix, pair_counts

TRUE = [0, 0, 0, 1, 1, 1, 2, 2, 2]
PERFECT = [2, 2, 2, 0, 0, 0, 1, 1, 1]  # same partition, permuted labels
BAD = [0, 1, 2, 0, 1, 2, 0, 1, 2]


class TestContingency:
    def test_shape_and_totals(self):
        table = contingency_matrix(TRUE, PERFECT)
        assert table.shape == (3, 3)
        assert table.sum() == 9

    def test_perfect_is_permutation_matrix(self):
        table = contingency_matrix(TRUE, PERFECT)
        assert sorted(table.max(axis=1).tolist()) == [3, 3, 3]
        assert np.count_nonzero(table) == 3

    def test_pair_confusion_consistency(self):
        matrix = pair_confusion_matrix(TRUE, BAD)
        n = len(TRUE)
        assert matrix.sum() == n * (n - 1)

    def test_pair_counts_identity(self):
        tn, fp, fn, tp = pair_counts(TRUE, TRUE)
        assert fp == fn == 0
        assert tp == 9  # 3 classes x C(3,2)


class TestRandIndices:
    def test_perfect_agreement(self):
        assert rand_index(TRUE, PERFECT) == pytest.approx(1.0)
        assert adjusted_rand_index(TRUE, PERFECT) == pytest.approx(1.0)

    def test_permutation_invariance(self):
        assert adjusted_rand_index(TRUE, PERFECT) == pytest.approx(
            adjusted_rand_index(PERFECT, TRUE)
        )

    def test_bad_partition_scores_low(self):
        # BAD splits every class across every cluster: worse than chance.
        value = adjusted_rand_index(TRUE, BAD)
        assert -1.0 <= value < 0.1

    def test_single_cluster_prediction(self):
        value = adjusted_rand_index(TRUE, [0] * 9)
        assert value == pytest.approx(0.0, abs=1e-9)

    def test_known_value_from_literature(self):
        # Example with hand-computable ARI.
        a = [0, 0, 1, 1]
        b = [0, 0, 1, 2]
        assert adjusted_rand_index(a, b) == pytest.approx(0.5714285, abs=1e-5)

    def test_ri_bounds(self, rng):
        a = rng.integers(0, 3, 30)
        b = rng.integers(0, 4, 30)
        assert 0.0 <= rand_index(a, b) <= 1.0


class TestInformationMeasures:
    def test_nmi_perfect(self):
        assert normalized_mutual_information(TRUE, PERFECT) == pytest.approx(1.0)

    def test_nmi_bounds(self, rng):
        a = rng.integers(0, 3, 40)
        b = rng.integers(0, 5, 40)
        assert 0.0 <= normalized_mutual_information(a, b) <= 1.0

    def test_mi_nonnegative(self, rng):
        a = rng.integers(0, 3, 40)
        b = rng.integers(0, 3, 40)
        assert mutual_information(a, b) >= -1e-12

    def test_nmi_average_modes(self):
        for mode in ("arithmetic", "geometric", "min", "max"):
            value = normalized_mutual_information(TRUE, BAD, average=mode)
            assert 0.0 <= value <= 1.0
        with pytest.raises(ValueError):
            normalized_mutual_information(TRUE, BAD, average="bogus")

    def test_emi_between_zero_and_mi(self):
        emi = expected_mutual_information(TRUE, PERFECT)
        mi = mutual_information(TRUE, PERFECT)
        assert 0.0 <= emi <= mi + 1e-12

    def test_ami_perfect_and_random(self):
        assert adjusted_mutual_information(TRUE, PERFECT) == pytest.approx(1.0)
        assert adjusted_mutual_information(TRUE, [0] * 9) == pytest.approx(0.0, abs=1e-9)

    def test_ami_near_zero_for_random(self, rng):
        values = []
        for _ in range(5):
            a = rng.integers(0, 3, 60)
            b = rng.integers(0, 3, 60)
            values.append(adjusted_mutual_information(a, b))
        assert abs(float(np.mean(values))) < 0.15


class TestOtherMeasures:
    def test_homogeneity_completeness_vmeasure(self):
        assert homogeneity_score(TRUE, PERFECT) == pytest.approx(1.0)
        assert completeness_score(TRUE, PERFECT) == pytest.approx(1.0)
        assert v_measure_score(TRUE, PERFECT) == pytest.approx(1.0)

    def test_over_segmentation_keeps_homogeneity(self):
        # Splitting a class keeps clusters pure but hurts completeness.
        pred = [0, 0, 3, 1, 1, 4, 2, 2, 5]
        assert homogeneity_score(TRUE, pred) == pytest.approx(1.0)
        assert completeness_score(TRUE, pred) < 1.0

    def test_purity(self):
        assert purity_score(TRUE, PERFECT) == pytest.approx(1.0)
        assert purity_score(TRUE, [0] * 9) == pytest.approx(1 / 3)

    def test_fowlkes_mallows(self):
        assert fowlkes_mallows_index(TRUE, PERFECT) == pytest.approx(1.0)
        assert 0.0 <= fowlkes_mallows_index(TRUE, BAD) <= 1.0

    def test_clustering_report_keys(self):
        report = clustering_report(TRUE, BAD)
        assert set(report) == {"ari", "ri", "nmi", "ami", "purity", "vmeasure", "fmi"}

    def test_evaluate_measure_dispatch(self):
        assert evaluate_measure("ARI", TRUE, PERFECT) == pytest.approx(1.0)
        assert evaluate_measure("nmi", TRUE, PERFECT) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            evaluate_measure("accuracy", TRUE, PERFECT)
