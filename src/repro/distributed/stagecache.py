"""The stage cache as a data plane: fingerprints over the wire, not arrays.

When the coordinator and its workers share a directory (NFS, a bind mount,
or plain ``/tmp`` for local pools), large ndarrays never need to travel
through job payloads at all.  The coordinator *stashes* each array once
under its content fingerprint (the same
:func:`repro.pipeline.fingerprint.fingerprint` that keys stage
checkpoints) and ships a tiny :class:`PlaneArrayRef` instead; the worker
*resolves* refs against the shared directory before running the job, and
stashes its own large result arrays the same way on the way back.

Properties this buys:

* **Dedup for free** — content addressing means the dataset array shared
  by M per-length jobs is written once and referenced M times (the
  distributed analogue of the shared-memory plan's identity dedup).
* **Retry-safe** — a missing or truncated file surfaces as
  :class:`PlaneMissError`, a retryable per-job failure, exactly like a
  vanished ``/dev/shm`` segment on the shared-memory backend.
* **Crash-safe writes** — arrays land via ``tmp + os.replace``, so a
  reader never observes a half-written file (the
  :class:`~repro.pipeline.cache.DiskStageCache` idiom).

The payload walk mirrors :func:`repro.parallel.shared._swap_leaves` — the
same traversal that substitutes shared-memory refs — one level deeper, so
chaos-wrapped jobs (``_ChaosJob(job=...)``) still reach their arrays.  One
difference: dataclass containers are rebuilt by shallow copy instead of
``dataclasses.replace``, because replace re-runs ``__post_init__`` and a
validating payload type (``TimeSeriesDataset`` checks its ``data`` array)
must not see the transport representation — the symmetric ``resolve`` on
the other side restores the validated original.
"""

from __future__ import annotations

import copy
import dataclasses
import os
import threading
from pathlib import Path
from typing import Any, Callable, Dict, Tuple, Union

import numpy as np

from repro.exceptions import ParallelExecutionError, ValidationError
from repro.parallel.shared import _PAYLOAD_DEPTH
from repro.pipeline.fingerprint import fingerprint

#: Arrays smaller than this ship inline — a ref + a file round-trip costs
#: more than a few KB of base64 (mirrors the shared-memory threshold).
DEFAULT_MIN_PLANE_BYTES = 32 * 1024

#: One level deeper than the shared-memory walk: payloads may arrive
#: wrapped in a chaos ``_ChaosJob`` whose ``job`` field holds the real one.
_PLANE_DEPTH = _PAYLOAD_DEPTH + 1


def _swap_payload_leaves(
    value: Any, swap: Callable[[Any], Any], _depth: int
) -> Any:
    """Rebuild ``value`` with ``swap`` applied to every non-container leaf.

    The :func:`repro.parallel.shared._swap_leaves` traversal, except that a
    changed dataclass is rebuilt by shallow copy + ``object.__setattr__``
    (works on frozen instances, and — unlike ``dataclasses.replace`` —
    never re-runs a validating ``__post_init__`` against a swapped-in
    transport ref).
    """
    if not isinstance(value, (dict, tuple, list)) and not (
        dataclasses.is_dataclass(value) and not isinstance(value, type)
    ):
        return swap(value)
    if _depth <= 0:
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        changes = {}
        for field in dataclasses.fields(value):
            item = getattr(value, field.name)
            replaced = _swap_payload_leaves(item, swap, _depth - 1)
            if replaced is not item:
                changes[field.name] = replaced
        if not changes:
            return value
        clone = copy.copy(value)
        for name, replaced in changes.items():
            object.__setattr__(clone, name, replaced)
        return clone
    if isinstance(value, dict):
        replaced_items = {
            key: _swap_payload_leaves(item, swap, _depth - 1)
            for key, item in value.items()
        }
        if all(replaced_items[key] is value[key] for key in value):
            return value
        return replaced_items
    replaced_seq = [_swap_payload_leaves(item, swap, _depth - 1) for item in value]
    if all(new is old for new, old in zip(replaced_seq, value)):
        return value
    if isinstance(value, tuple):
        # Preserve namedtuples (their constructor takes positional args).
        cls = type(value)
        return cls(*replaced_seq) if hasattr(cls, "_fields") else tuple(replaced_seq)
    return replaced_seq


class PlaneMissError(ParallelExecutionError):
    """A :class:`PlaneArrayRef` did not resolve against the plane directory.

    Retryable by design: the coordinator treats it like any per-job
    failure, so a retry policy re-stashes/re-dispatches instead of
    surfacing a surprise after the fan-out settled.
    """


class PlaneArrayRef:
    """A picklable fingerprint reference to an array parked in the plane.

    Deliberately *not* a dataclass: the payload walk
    (:func:`~repro.parallel.shared._swap_leaves`) recurses into dataclass
    fields, and a ref must be handed to the swap callback as a leaf — the
    whole point is substituting it back into an array.
    """

    __slots__ = ("key", "dtype", "shape", "nbytes")

    def __init__(
        self, key: str, dtype: str, shape: Tuple[int, ...], nbytes: int
    ) -> None:
        self.key = key
        self.dtype = dtype
        self.shape = tuple(shape)
        self.nbytes = int(nbytes)

    def __reduce__(self):
        return (PlaneArrayRef, (self.key, self.dtype, self.shape, self.nbytes))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlaneArrayRef):
            return NotImplemented
        return (self.key, self.dtype, self.shape, self.nbytes) == (
            other.key,
            other.dtype,
            other.shape,
            other.nbytes,
        )

    def __hash__(self) -> int:
        return hash((self.key, self.dtype, self.shape, self.nbytes))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlaneArrayRef(key={self.key[:12]!r}..., dtype={self.dtype!r}, "
            f"shape={self.shape!r}, nbytes={self.nbytes})"
        )


class StageDataPlane:
    """Stash/resolve large ndarrays in a shared content-addressed directory.

    Parameters
    ----------
    directory:
        The shared directory (created if needed).  Workers are configured
        with an allowed root (``graphint worker --data-plane DIR``) and
        refuse to resolve against anything outside it.
    min_bytes:
        Arrays below this many bytes stay inline in the job payload.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        min_bytes: int = DEFAULT_MIN_PLANE_BYTES,
    ) -> None:
        if int(min_bytes) < 0:
            raise ValidationError(f"min_bytes must be >= 0, got {min_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.min_bytes = int(min_bytes)
        # Transfer accounting (coordinator-side mirror of bytes_shipped):
        # bytes_stashed were written to the plane, bytes_deduplicated were
        # matched to an already-present file, bytes_resolved were read back.
        self.arrays_stashed = 0
        self.arrays_deduplicated = 0
        self.arrays_resolved = 0
        self.bytes_stashed = 0
        self.bytes_deduplicated = 0
        self.bytes_resolved = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.arr"

    def stash_array(self, array: np.ndarray) -> PlaneArrayRef:
        """Park one array in the plane and return its fingerprint ref."""
        contiguous = np.ascontiguousarray(array)
        key = fingerprint(contiguous)
        path = self._path(key)
        if path.exists():
            with self._lock:
                self.arrays_deduplicated += 1
                self.bytes_deduplicated += int(contiguous.nbytes)
        else:
            tmp = path.with_name(
                f"{path.name}.tmp-{os.getpid()}-{threading.get_ident()}"
            )
            tmp.write_bytes(contiguous.tobytes())
            os.replace(tmp, path)
            with self._lock:
                self.arrays_stashed += 1
                self.bytes_stashed += int(contiguous.nbytes)
        return PlaneArrayRef(
            key=key,
            dtype=contiguous.dtype.str,
            shape=tuple(int(size) for size in contiguous.shape),
            nbytes=int(contiguous.nbytes),
        )

    def load_array(self, ref: PlaneArrayRef) -> np.ndarray:
        """Resolve one ref back into a (writable) array."""
        path = self._path(ref.key)
        try:
            array = np.fromfile(path, dtype=np.dtype(ref.dtype))
        except OSError as exc:
            raise PlaneMissError(
                f"data-plane array {ref.key[:12]}... is missing from "
                f"{self.directory} ({exc})"
            ) from exc
        if array.nbytes != int(ref.nbytes):
            raise PlaneMissError(
                f"data-plane array {ref.key[:12]}... is truncated: expected "
                f"{ref.nbytes} bytes, found {array.nbytes}"
            )
        with self._lock:
            self.arrays_resolved += 1
            self.bytes_resolved += int(ref.nbytes)
        return array.reshape(ref.shape)

    # ------------------------------------------------------------------ #
    def stash(self, value: Any) -> Any:
        """Rebuild ``value`` with every large ndarray swapped for a ref."""

        def swap(leaf: Any) -> Any:
            if (
                isinstance(leaf, np.ndarray)
                and leaf.dtype != object
                and leaf.nbytes >= self.min_bytes
            ):
                return self.stash_array(leaf)
            return leaf

        return _swap_payload_leaves(value, swap, _PLANE_DEPTH)

    def resolve(self, value: Any) -> Any:
        """Inverse of :meth:`stash`: load every ref back into an array."""

        def swap(leaf: Any) -> Any:
            if isinstance(leaf, PlaneArrayRef):
                return self.load_array(leaf)
            return leaf

        return _swap_payload_leaves(value, swap, _PLANE_DEPTH)

    # ------------------------------------------------------------------ #
    @property
    def bytes_offloaded(self) -> int:
        """Bytes kept out of job payloads (written + deduplicated)."""
        return self.bytes_stashed + self.bytes_deduplicated

    def stats(self) -> Dict[str, int]:
        """Snapshot of the transfer counters."""
        with self._lock:
            return {
                "arrays_stashed": self.arrays_stashed,
                "arrays_deduplicated": self.arrays_deduplicated,
                "arrays_resolved": self.arrays_resolved,
                "bytes_stashed": self.bytes_stashed,
                "bytes_deduplicated": self.bytes_deduplicated,
                "bytes_resolved": self.bytes_resolved,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StageDataPlane({str(self.directory)!r}, min_bytes={self.min_bytes})"
        )
