"""Schema-version guard shared by every on-disk JSON format.

Both the benchmark result store (:mod:`repro.benchmark.store`) and the model
artifact format (:mod:`repro.serve.artifacts`) stamp their payloads with a
``schema_version`` integer.  Readers call :func:`check_schema_version` so the
failure mode for a file written by a *newer* library version is a clear
"upgrade the library" message instead of a KeyError deep inside a parser.

The policy is deliberately simple:

* versions are positive integers, bumped on any incompatible layout change;
* a reader accepts every version up to the one it was built for (writers are
  expected to keep old fields stable within a major format);
* anything newer, missing, or malformed is rejected loudly.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import ValidationError


def check_schema_version(
    found: object, *, supported: int, context: str
) -> int:
    """Validate a payload's ``schema_version`` against the reader's.

    Parameters
    ----------
    found:
        The raw value read from the payload (``None`` when the field is
        absent, which is also rejected).
    supported:
        The newest version this reader understands.
    context:
        Human-readable payload description for the error message, e.g.
        ``"benchmark result file 'results.json'"``.
    """
    if found is None:
        raise ValidationError(
            f"{context} has no schema_version field; it was either written by "
            "a pre-versioning release or is not a valid payload"
        )
    if isinstance(found, bool) or not isinstance(found, int):
        raise ValidationError(
            f"{context} has a malformed schema_version {found!r}; expected a "
            "positive integer"
        )
    if found < 1:
        raise ValidationError(
            f"{context} has invalid schema_version {found}; versions start at 1"
        )
    if found > supported:
        raise ValidationError(
            f"{context} uses schema_version {found} but this library only "
            f"understands versions <= {supported}; upgrade the library to read it"
        )
    return int(found)


def schema_envelope(version: int, format_name: Optional[str] = None) -> dict:
    """The header fields every versioned JSON payload starts with."""
    header: dict = {"schema_version": int(version)}
    if format_name is not None:
        header["format"] = str(format_name)
    return header
