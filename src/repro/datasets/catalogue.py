"""Dataset catalogue: the population of datasets the Benchmark frame runs on.

The catalogue mirrors the role of the UCR archive in the paper: a named
collection of labelled datasets annotated with the attributes the Benchmark
frame filters on (dataset type, series length, number of classes, number of
series).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.exceptions import DatasetError
from repro.utils.containers import TimeSeriesDataset
from repro.datasets import synthetic


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset recipe plus its descriptive attributes."""

    name: str
    generator: Callable[..., TimeSeriesDataset]
    dataset_type: str
    n_series: int
    length: int
    n_classes: int
    description: str = ""
    default_kwargs: Dict[str, object] = field(default_factory=dict)

    def generate(self, random_state=None) -> TimeSeriesDataset:
        """Materialise the dataset with its default parameters.

        The returned dataset is renamed after the spec (name and type) so that
        benchmark results and GUI filters always align with the catalogue
        entry, even when a generator is reused under several names.
        """
        kwargs = dict(self.default_kwargs)
        kwargs.setdefault("n_series", self.n_series)
        kwargs.setdefault("length", self.length)
        dataset = self.generator(random_state=random_state, **kwargs)
        if dataset.n_series != self.n_series or dataset.length != self.length:
            raise DatasetError(
                f"generator for {self.name!r} produced shape "
                f"({dataset.n_series}, {dataset.length}), spec says "
                f"({self.n_series}, {self.length})"
            )
        from dataclasses import replace

        return replace(dataset, name=self.name, dataset_type=self.dataset_type)


class DatasetCatalogue:
    """A registry of :class:`DatasetSpec` addressable by name."""

    def __init__(self) -> None:
        self._specs: Dict[str, DatasetSpec] = {}

    def register(self, spec: DatasetSpec) -> None:
        """Add a spec; names must be unique."""
        if spec.name in self._specs:
            raise DatasetError(f"dataset {spec.name!r} is already registered")
        self._specs[spec.name] = spec

    def get(self, name: str) -> DatasetSpec:
        """Look a spec up by name."""
        if name not in self._specs:
            raise DatasetError(
                f"unknown dataset {name!r}; available: {sorted(self._specs)}"
            )
        return self._specs[name]

    def names(self) -> List[str]:
        """All registered dataset names, sorted."""
        return sorted(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[DatasetSpec]:
        return iter(self._specs[name] for name in self.names())

    def filter(
        self,
        *,
        dataset_type: Optional[str] = None,
        min_length: Optional[int] = None,
        max_length: Optional[int] = None,
        min_classes: Optional[int] = None,
        max_classes: Optional[int] = None,
        min_series: Optional[int] = None,
        max_series: Optional[int] = None,
    ) -> List[DatasetSpec]:
        """Filter specs along the Benchmark-frame dimensions."""
        results = []
        for spec in self:
            if dataset_type is not None and spec.dataset_type != dataset_type:
                continue
            if min_length is not None and spec.length < min_length:
                continue
            if max_length is not None and spec.length > max_length:
                continue
            if min_classes is not None and spec.n_classes < min_classes:
                continue
            if max_classes is not None and spec.n_classes > max_classes:
                continue
            if min_series is not None and spec.n_series < min_series:
                continue
            if max_series is not None and spec.n_series > max_series:
                continue
            results.append(spec)
        return results

    def summary_rows(self) -> List[Dict[str, object]]:
        """One summary dict per spec, for the GUI dataset selector."""
        return [
            {
                "name": spec.name,
                "type": spec.dataset_type,
                "n_series": spec.n_series,
                "length": spec.length,
                "n_classes": spec.n_classes,
                "description": spec.description,
            }
            for spec in self
        ]


def default_catalogue() -> DatasetCatalogue:
    """The standard dataset population used by examples, tests and benchmarks."""
    catalogue = DatasetCatalogue()
    entries = [
        DatasetSpec(
            name="cylinder_bell_funnel",
            generator=synthetic.make_cylinder_bell_funnel,
            dataset_type="synthetic-shape",
            n_series=60,
            length=128,
            n_classes=3,
            description="Plateau vs ramp-up vs ramp-down events at random onsets.",
        ),
        DatasetSpec(
            name="two_patterns",
            generator=synthetic.make_two_patterns,
            dataset_type="synthetic-shape",
            n_series=80,
            length=128,
            n_classes=4,
            description="Four classes defined by the order of an up-step and a down-step.",
        ),
        DatasetSpec(
            name="gun_point_like",
            generator=synthetic.make_gun_point_like,
            dataset_type="synthetic-motion",
            n_series=50,
            length=150,
            n_classes=2,
            description="Motion-capture-like single bump vs bump with dips.",
        ),
        DatasetSpec(
            name="sine_families",
            generator=synthetic.make_sine_families,
            dataset_type="synthetic-periodic",
            n_series=60,
            length=128,
            n_classes=3,
            description="Sinusoids with three distinct frequencies and random phase.",
        ),
        DatasetSpec(
            name="seasonal_mixture",
            generator=synthetic.make_seasonal_mixture,
            dataset_type="synthetic-seasonal",
            n_series=60,
            length=160,
            n_classes=3,
            description="Seasonality vs seasonality+trend vs seasonality+level-shift.",
        ),
        DatasetSpec(
            name="trend_classes",
            generator=synthetic.make_trend_classes,
            dataset_type="synthetic-trend",
            n_series=40,
            length=96,
            n_classes=2,
            description="Upward vs downward trend with AR(1) noise.",
        ),
        DatasetSpec(
            name="random_walk_regimes",
            generator=synthetic.make_random_walk_regimes,
            dataset_type="synthetic-stochastic",
            n_series=60,
            length=128,
            n_classes=3,
            description="Random walks with different drift / volatility regimes.",
        ),
        DatasetSpec(
            name="shapelet_classes",
            generator=synthetic.make_shapelet_classes,
            dataset_type="synthetic-shape",
            n_series=60,
            length=128,
            n_classes=3,
            description="Class-specific shapelets planted at random offsets.",
        ),
        DatasetSpec(
            name="spiky_patterns",
            generator=synthetic.make_spiky_patterns,
            dataset_type="synthetic-sensor",
            n_series=50,
            length=128,
            n_classes=2,
            description="Sparse high spikes vs dense low spikes.",
        ),
        DatasetSpec(
            name="mixed_bag",
            generator=synthetic.make_mixed_bag,
            dataset_type="synthetic-mixed",
            n_series=80,
            length=128,
            n_classes=4,
            description="Plateau / oscillation / ramp / spike-train classes.",
        ),
        DatasetSpec(
            name="noise_only",
            generator=synthetic.make_noise_only,
            dataset_type="synthetic-control",
            n_series=40,
            length=96,
            n_classes=2,
            description="Control dataset with random labels (no structure).",
        ),
    ]
    for spec in entries:
        catalogue.register(spec)
    return catalogue


def list_dataset_names() -> List[str]:
    """Names available in the default catalogue."""
    return default_catalogue().names()


def generate_dataset(name: str, random_state=None) -> TimeSeriesDataset:
    """Generate a dataset from the default catalogue by name."""
    return default_catalogue().get(name).generate(random_state=random_state)
