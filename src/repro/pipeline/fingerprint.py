"""Content fingerprints for pipeline values.

A stage's cache key is derived from the fingerprints of its inputs, so
fingerprints must be

* **content-addressed** — two equal values hash equally no matter how they
  were produced (an ndarray loaded from disk fingerprints like the freshly
  computed one);
* **stable across processes** — a disk cache written by one session must be
  hit by the next, so nothing here may depend on ``id()``, ``hash()``
  randomisation, or set iteration order.

NumPy arrays hash their dtype, shape, and raw bytes; generators hash their
bit-generator state; dataclasses, dicts, and sequences recurse.  An object
can opt out of the generic recursion by defining
``__fingerprint_parts__()`` returning a compact, deterministic
representation (``TimeSeriesGraph`` packs its node/edge/trajectory dicts
into a handful of sorted arrays this way — one pass over contiguous bytes
instead of a Python-level walk over thousands of dict entries).  Anything
else falls back to its pickle bytes — deterministic for the plain
array/dict/list compositions this library passes between stages (none of
them contain sets), and cheap enough that hashing is never the bottleneck
of the stage it guards.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import fields, is_dataclass

import numpy as np


def fingerprint(value: object) -> str:
    """Return a stable hex digest of ``value``'s content."""
    digest = hashlib.sha256()
    _feed(digest, value)
    return digest.hexdigest()


def _json_default(value: object) -> object:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")


def _feed(digest: "hashlib._Hash", value: object) -> None:
    if value is None:
        digest.update(b"none;")
    elif isinstance(value, np.ndarray):
        digest.update(f"ndarray:{value.dtype.str}:{value.shape};".encode())
        digest.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, np.random.Generator):
        # The bit-generator state pins the exact stream position, so a
        # generator fingerprints differently after every draw — which is
        # precisely what keeps cached stochastic stages honest.
        digest.update(b"rng;")
        digest.update(
            json.dumps(
                value.bit_generator.state, sort_keys=True, default=_json_default
            ).encode()
        )
    elif isinstance(value, (bool, np.bool_)):
        digest.update(f"bool:{bool(value)};".encode())
    elif isinstance(value, (int, np.integer)):
        digest.update(f"int:{int(value)};".encode())
    elif isinstance(value, (float, np.floating)):
        # repr round-trips doubles exactly (shortest-repr guarantee).
        digest.update(f"float:{float(value)!r};".encode())
    elif isinstance(value, str):
        digest.update(b"str;")
        digest.update(value.encode())
        digest.update(b";")
    elif isinstance(value, bytes):
        digest.update(b"bytes;")
        digest.update(value)
        digest.update(b";")
    elif hasattr(type(value), "__fingerprint_parts__") and not isinstance(value, type):
        digest.update(f"parts:{type(value).__qualname__};".encode())
        _feed(digest, value.__fingerprint_parts__())
    elif is_dataclass(value) and not isinstance(value, type):
        digest.update(f"dataclass:{type(value).__qualname__};".encode())
        for field in fields(value):
            digest.update(field.name.encode() + b"=")
            _feed(digest, getattr(value, field.name))
    elif isinstance(value, dict):
        digest.update(f"dict:{len(value)};".encode())
        for key in sorted(value, key=repr):
            _feed(digest, key)
            digest.update(b"->")
            _feed(digest, value[key])
    elif isinstance(value, (list, tuple)):
        digest.update(f"{type(value).__name__}:{len(value)};".encode())
        for item in value:
            _feed(digest, item)
            digest.update(b",")
    else:
        digest.update(f"pickle:{type(value).__qualname__};".encode())
        digest.update(pickle.dumps(value, protocol=4))
