"""Consensus Clustering — step (d) of the k-Graph pipeline.

The M per-length partitions L_ℓ are combined into a consensus
(co-association) matrix M_C whose entry (i, j) is the fraction of partitions
that put series i and j in the same cluster.  Spectral clustering on M_C
(interpreted as an affinity matrix) produces the final k-Graph labels L.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.cluster.spectral import SpectralClustering
from repro.exceptions import ValidationError
from repro.utils.validation import check_labels, check_positive_int


def build_consensus_matrix(partitions: Sequence[np.ndarray]) -> np.ndarray:
    """Co-association matrix over a sequence of partitions of the same samples.

    Entry (i, j) = (number of partitions where labels[i] == labels[j]) / M.
    The diagonal is 1 by construction and the matrix is symmetric.
    """
    if not partitions:
        raise ValidationError("at least one partition is required")
    cleaned: List[np.ndarray] = []
    n_samples = None
    for index, labels in enumerate(partitions):
        labels = check_labels(labels, name=f"partitions[{index}]")
        if n_samples is None:
            n_samples = labels.shape[0]
        elif labels.shape[0] != n_samples:
            raise ValidationError(
                f"partition {index} has {labels.shape[0]} samples, expected {n_samples}"
            )
        cleaned.append(labels)

    # One-hot GEMM: stacking the per-partition cluster indicators into one
    # (n_samples, sum of cluster counts) block matrix B turns the whole
    # co-association accumulation into a single B @ B.T — entry (i, j)
    # counts the partitions agreeing on (i, j).  The 0/1 dot products are
    # exact integers in float64, so the result is bit-identical to the
    # per-partition accumulation loop retained in
    # :func:`build_consensus_matrix_reference`.
    blocks = []
    for labels in cleaned:
        clusters, inverse = np.unique(labels, return_inverse=True)
        onehot = np.zeros((n_samples, clusters.size))
        onehot[np.arange(n_samples), inverse] = 1.0
        blocks.append(onehot)
    indicators = np.hstack(blocks)
    matrix = (indicators @ indicators.T) / len(cleaned)
    np.fill_diagonal(matrix, 1.0)
    return matrix


def build_consensus_matrix_reference(partitions: Sequence[np.ndarray]) -> np.ndarray:
    """Reference per-partition accumulation of the co-association matrix.

    Retained as the implementation :func:`build_consensus_matrix` is
    benchmarked and equivalence-tested against (E13).
    """
    if not partitions:
        raise ValidationError("at least one partition is required")
    cleaned: List[np.ndarray] = []
    n_samples = None
    for index, labels in enumerate(partitions):
        labels = check_labels(labels, name=f"partitions[{index}]")
        if n_samples is None:
            n_samples = labels.shape[0]
        elif labels.shape[0] != n_samples:
            raise ValidationError(
                f"partition {index} has {labels.shape[0]} samples, expected {n_samples}"
            )
        cleaned.append(labels)

    matrix = np.zeros((n_samples, n_samples))
    for labels in cleaned:
        matrix += (labels[:, None] == labels[None, :]).astype(float)
    matrix /= len(cleaned)
    np.fill_diagonal(matrix, 1.0)
    return matrix


def consensus_clustering(
    partitions: Sequence[np.ndarray],
    n_clusters: int,
    *,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Spectral consensus over a set of partitions.

    Returns
    -------
    labels:
        The final consensus partition L.
    consensus_matrix:
        The co-association matrix M_C the labels were derived from.
    """
    n_clusters = check_positive_int(n_clusters, "n_clusters")
    consensus = build_consensus_matrix(partitions)
    if n_clusters > consensus.shape[0]:
        raise ValidationError(
            f"n_clusters ({n_clusters}) cannot exceed the number of samples "
            f"({consensus.shape[0]})"
        )
    spectral = SpectralClustering(
        n_clusters=n_clusters,
        affinity="precomputed",
        random_state=random_state,
    )
    labels = spectral.fit_predict(consensus)
    return labels, consensus
