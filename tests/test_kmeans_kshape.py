"""Unit tests for k-Means and k-Shape."""

import numpy as np
import pytest

from repro.cluster.kmeans import KMeans, kmeans_plus_plus_init
from repro.cluster.kshape import KShape
from repro.exceptions import NotFittedError, ValidationError
from repro.metrics.clustering import adjusted_rand_index


class TestKMeansPlusPlus:
    def test_centers_are_data_points(self, blob_data):
        points, _ = blob_data
        centers = kmeans_plus_plus_init(points, 3, np.random.default_rng(0))
        assert centers.shape == (3, 2)
        for center in centers:
            assert np.any(np.all(np.isclose(points, center), axis=1))

    def test_too_many_clusters(self, blob_data):
        points, _ = blob_data
        with pytest.raises(ValidationError):
            kmeans_plus_plus_init(points, points.shape[0] + 1, np.random.default_rng(0))

    def test_duplicate_points_handled(self):
        points = np.zeros((10, 2))
        centers = kmeans_plus_plus_init(points, 3, np.random.default_rng(0))
        assert centers.shape == (3, 2)


class TestKMeans:
    def test_recovers_blobs(self, blob_data):
        points, truth = blob_data
        labels = KMeans(n_clusters=3, random_state=0).fit_predict(points)
        assert adjusted_rand_index(truth, labels) > 0.95

    def test_deterministic_with_seed(self, blob_data):
        points, _ = blob_data
        a = KMeans(n_clusters=3, random_state=11).fit_predict(points)
        b = KMeans(n_clusters=3, random_state=11).fit_predict(points)
        assert np.array_equal(a, b)

    def test_inertia_decreases_with_more_clusters(self, blob_data):
        points, _ = blob_data
        inertia2 = KMeans(n_clusters=2, random_state=0).fit(points).inertia_
        inertia5 = KMeans(n_clusters=5, random_state=0).fit(points).inertia_
        assert inertia5 < inertia2

    def test_predict_and_transform(self, blob_data):
        points, _ = blob_data
        model = KMeans(n_clusters=3, random_state=0).fit(points)
        predicted = model.predict(points)
        assert np.array_equal(predicted, model.labels_)
        distances = model.transform(points[:5])
        assert distances.shape == (5, 3)
        assert np.all(distances >= 0)

    def test_all_clusters_used(self, blob_data):
        points, _ = blob_data
        model = KMeans(n_clusters=3, random_state=0).fit(points)
        assert model.n_clusters_found_ == 3

    def test_single_cluster(self, blob_data):
        points, _ = blob_data
        labels = KMeans(n_clusters=1, random_state=0).fit_predict(points)
        assert np.all(labels == 0)

    def test_k_equals_n(self):
        points = np.arange(8, dtype=float).reshape(4, 2)
        labels = KMeans(n_clusters=4, n_init=2, random_state=0).fit_predict(points)
        assert np.unique(labels).size == 4

    def test_errors(self, blob_data):
        points, _ = blob_data
        with pytest.raises(ValidationError):
            KMeans(n_clusters=points.shape[0] + 1).fit(points)
        with pytest.raises(NotFittedError):
            KMeans(3).predict(points)
        with pytest.raises(ValidationError):
            KMeans(n_clusters=0)
        with pytest.raises(ValidationError):
            KMeans(3, tol=-1.0)

    def test_predict_feature_mismatch(self, blob_data):
        points, _ = blob_data
        model = KMeans(n_clusters=2, random_state=0).fit(points)
        with pytest.raises(ValidationError):
            model.predict(np.zeros((2, 5)))


class TestKShape:
    @pytest.fixture(scope="class")
    def shifted_patterns(self):
        """Two classes of identical shapes at random shifts (k-Means-hostile)."""
        generator = np.random.default_rng(3)
        length = 80
        series, labels = [], []
        base_a = np.zeros(length)
        base_a[20:35] = 1.0
        t = np.linspace(0, 6 * np.pi, length)
        base_b = np.sin(t)
        for _ in range(12):
            series.append(np.roll(base_a, generator.integers(-10, 10)) + generator.normal(0, 0.05, length))
            labels.append(0)
            series.append(np.roll(base_b, generator.integers(-10, 10)) + generator.normal(0, 0.05, length))
            labels.append(1)
        return np.vstack(series), np.asarray(labels)

    def test_separates_shifted_patterns(self, shifted_patterns):
        data, truth = shifted_patterns
        labels = KShape(n_clusters=2, n_init=2, random_state=0).fit_predict(data)
        assert adjusted_rand_index(truth, labels) > 0.8

    def test_centroids_are_znormalised(self, shifted_patterns):
        data, _ = shifted_patterns
        model = KShape(n_clusters=2, n_init=1, random_state=0).fit(data)
        for centroid in model.cluster_centers_:
            assert abs(centroid.mean()) < 1e-6
            assert abs(centroid.std() - 1.0) < 1e-6

    def test_predict_consistent_with_fit(self, shifted_patterns):
        data, _ = shifted_patterns
        model = KShape(n_clusters=2, n_init=1, random_state=0).fit(data)
        assert np.array_equal(model.predict(data), model.labels_)

    def test_deterministic(self, shifted_patterns):
        data, _ = shifted_patterns
        a = KShape(n_clusters=2, n_init=1, random_state=5).fit_predict(data)
        b = KShape(n_clusters=2, n_init=1, random_state=5).fit_predict(data)
        assert np.array_equal(a, b)

    def test_too_many_clusters(self, shifted_patterns):
        data, _ = shifted_patterns
        with pytest.raises(ValidationError):
            KShape(n_clusters=data.shape[0] + 1).fit(data)

    def test_predict_length_mismatch(self, shifted_patterns):
        data, _ = shifted_patterns
        model = KShape(n_clusters=2, n_init=1, random_state=0).fit(data)
        with pytest.raises(ValidationError):
            model.predict(np.zeros((2, 10)))
