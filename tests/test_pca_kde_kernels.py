"""Unit tests for the numerical substrates: PCA, KDE and affinity kernels."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.linalg.kde import KernelDensityEstimator, local_maxima_1d, scott_bandwidth, silverman_bandwidth
from repro.linalg.kernels import gaussian_kernel_matrix, knn_affinity, rbf_affinity
from repro.linalg.pca import PCA


class TestPCA:
    def test_recovers_dominant_direction(self, rng):
        # Points along y = 2x with small orthogonal noise.
        x = rng.normal(size=200)
        data = np.column_stack([x, 2 * x + rng.normal(0, 0.05, 200)])
        pca = PCA(n_components=1).fit(data)
        direction = pca.components_[0] / np.linalg.norm(pca.components_[0])
        expected = np.array([1.0, 2.0]) / np.sqrt(5.0)
        assert abs(abs(direction @ expected) - 1.0) < 1e-3
        assert pca.explained_variance_ratio_[0] > 0.99

    def test_transform_shape_and_centering(self, rng):
        data = rng.normal(size=(50, 8))
        pca = PCA(n_components=3)
        projected = pca.fit_transform(data)
        assert projected.shape == (50, 3)
        assert np.allclose(projected.mean(axis=0), 0.0, atol=1e-8)

    def test_explained_variance_sorted(self, rng):
        data = rng.normal(size=(60, 6)) * np.array([5, 4, 3, 2, 1, 0.5])
        pca = PCA(n_components=6).fit(data)
        variances = pca.explained_variance_
        assert np.all(np.diff(variances) <= 1e-9)
        assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0, abs=1e-8)

    def test_inverse_transform_roundtrip(self, rng):
        data = rng.normal(size=(40, 5))
        pca = PCA(n_components=5).fit(data)
        reconstructed = pca.inverse_transform(pca.transform(data))
        assert np.allclose(reconstructed, data, atol=1e-8)

    def test_whiten_unit_variance(self, rng):
        data = rng.normal(size=(100, 4)) * np.array([10, 5, 1, 0.1])
        projected = PCA(n_components=2, whiten=True).fit_transform(data)
        assert np.allclose(projected.std(axis=0, ddof=1), 1.0, atol=1e-6)

    def test_not_fitted_errors(self):
        with pytest.raises(NotFittedError):
            PCA(2).transform(np.zeros((3, 4)))

    def test_too_many_components(self, rng):
        with pytest.raises(ValidationError):
            PCA(n_components=10).fit(rng.normal(size=(5, 3)))

    def test_feature_mismatch_on_transform(self, rng):
        pca = PCA(2).fit(rng.normal(size=(10, 4)))
        with pytest.raises(ValidationError):
            pca.transform(rng.normal(size=(3, 5)))


class TestKDE:
    def test_bandwidth_rules_positive(self, rng):
        data = rng.normal(size=(100, 2))
        assert scott_bandwidth(data) > 0
        assert silverman_bandwidth(data) > 0

    def test_density_higher_at_mode(self, rng):
        sample = np.concatenate([rng.normal(-3, 0.3, 200), rng.normal(3, 0.3, 200)])
        kde = KernelDensityEstimator(bandwidth=0.3).fit(sample)
        densities = kde.score_samples(np.array([[-3.0], [0.0], [3.0]]))
        assert densities[0] > densities[1]
        assert densities[2] > densities[1]

    def test_grid_evaluation_finds_two_modes(self, rng):
        sample = np.concatenate([rng.normal(-2, 0.2, 300), rng.normal(2, 0.2, 300)])
        kde = KernelDensityEstimator(bandwidth=0.25).fit(sample)
        grid, density = kde.evaluate_grid_1d(-4, 4, 200)
        maxima = local_maxima_1d(density, min_prominence=0.05 * (density.max() - density.min()))
        modes = sorted(grid[m] for m in maxima)
        assert len(modes) >= 2
        assert abs(modes[0] + 2) < 0.5 and abs(modes[-1] - 2) < 0.5

    def test_epanechnikov_kernel(self, rng):
        sample = rng.normal(size=100)
        kde = KernelDensityEstimator(bandwidth=0.5, kernel="epanechnikov").fit(sample)
        assert np.all(kde.score_samples(np.array([[0.0], [100.0]])) >= 0.0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            KernelDensityEstimator().score_samples(np.zeros((2, 1)))

    def test_invalid_bandwidth(self):
        with pytest.raises(ValidationError):
            KernelDensityEstimator(bandwidth=-1.0)
        with pytest.raises(ValidationError):
            KernelDensityEstimator(bandwidth="magic")

    def test_dimension_mismatch(self, rng):
        kde = KernelDensityEstimator().fit(rng.normal(size=(20, 2)))
        with pytest.raises(ValidationError):
            kde.score_samples(np.zeros((3, 3)))


class TestLocalMaxima:
    def test_simple_peak(self):
        assert local_maxima_1d(np.array([0, 1, 3, 1, 0])) == [2]

    def test_plateau_reports_once(self):
        values = np.array([0, 2, 2, 2, 0, 1, 0])
        maxima = local_maxima_1d(values)
        assert maxima == [1, 5]

    def test_boundary_maxima(self):
        assert local_maxima_1d(np.array([5, 1, 0, 1, 6])) == [0, 4]

    def test_prominence_filter(self):
        values = np.array([0.0, 1.0, 0.9, 0.95, 0.0, 5.0, 0.0])
        strict = local_maxima_1d(values, min_prominence=2.0)
        assert strict == [5]


class TestKernels:
    def test_gaussian_kernel_range(self, blob_data):
        points, _ = blob_data
        from repro.metrics.distances import pairwise_distances

        affinity = gaussian_kernel_matrix(pairwise_distances(points))
        assert np.all(affinity >= 0.0) and np.all(affinity <= 1.0)
        assert np.allclose(np.diag(affinity), 1.0)

    def test_rbf_affinity_symmetric(self, blob_data):
        points, _ = blob_data
        affinity = rbf_affinity(points)
        assert np.allclose(affinity, affinity.T)

    def test_gamma_validation(self, blob_data):
        points, _ = blob_data
        from repro.metrics.distances import pairwise_distances

        with pytest.raises(ValidationError):
            gaussian_kernel_matrix(pairwise_distances(points), gamma=0.0)

    def test_knn_affinity_symmetric_binary(self, blob_data):
        points, _ = blob_data
        affinity = knn_affinity(points, n_neighbors=5)
        assert np.allclose(affinity, affinity.T)
        assert set(np.unique(affinity)).issubset({0.0, 1.0})
        assert np.all(affinity.sum(axis=1) >= 5)
