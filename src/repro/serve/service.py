"""Online model-serving JSON API on top of the registry and engine.

Routes (all JSON):

* ``GET  /healthz``                      — liveness + registry/engine stats
* ``GET  /models``                       — every published model
* ``GET  /models/<dataset>``             — versions of one dataset
* ``GET  /models/<dataset>/<model_id>``  — record + full manifest
* ``POST /predict``                      — body ``{"series": [...] | [[...]],
  "dataset": "...", "model_id": "..."}``; ``dataset`` may be omitted when
  the registry holds exactly one, ``model_id`` defaults to the latest.

The service reuses the dashboard's HTTP plumbing
(:func:`repro.viz.server.serve_application`): it is a plain object with a
``handle_request`` method, so tests can drive it without sockets and the
CLI can mount it next to the dashboard (:class:`CombinedApplication`).
Predictions go through one :class:`~repro.serve.engine.InferenceEngine`
per served model, so concurrent HTTP requests coalesce into micro-batches.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import (
    ArtifactError,
    ModelNotFoundError,
    ServiceError,
    ServiceFaultError,
    ServiceOverloadError,
    ValidationError,
)
from repro.parallel import ExecutionBackend, resolve_backend
from repro.serve.artifacts import ARTIFACT_SCHEMA_VERSION
from repro.serve.engine import InferenceEngine
from repro.serve.registry import ModelRegistry
from repro.viz.server import Response, json_error, serve_application

#: Routes advertised by 404 responses and /healthz.
ROUTES = ["/healthz", "/models", "/models/<dataset>", "/models/<dataset>/<model_id>", "/predict"]


class ServeApplication:
    """Request router of the model-serving API.

    Parameters
    ----------
    registry:
        The :class:`ModelRegistry` to serve models from.
    max_batch_size, flush_interval, backend, n_jobs:
        Forwarded to the per-model :class:`InferenceEngine`\\ s.  Validated
        eagerly so a misconfigured server fails at startup, not on the
        first client request.
    max_engines:
        Maximum number of live engines; the least recently used engine is
        closed and evicted when the bound is exceeded, so a long-running
        server with many published versions cannot accumulate threads and
        resident models without bound.
    request_timeout:
        Seconds one /predict request may wait (queueing + dispatch) before
        it fails with a 503; bounds the damage of a hung backend.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        max_batch_size: int = 32,
        flush_interval: float = 0.005,
        backend: Union[None, str, ExecutionBackend] = None,
        n_jobs: Optional[int] = None,
        max_engines: int = 8,
        request_timeout: float = 30.0,
    ) -> None:
        if int(max_batch_size) < 1:
            raise ValidationError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if float(flush_interval) < 0:
            raise ValidationError(f"flush_interval must be >= 0, got {flush_interval}")
        if int(max_engines) < 1:
            raise ValidationError(f"max_engines must be >= 1, got {max_engines}")
        if float(request_timeout) <= 0:
            raise ValidationError(
                f"request_timeout must be > 0, got {request_timeout}"
            )
        self.registry = registry
        self.max_batch_size = int(max_batch_size)
        self.flush_interval = float(flush_interval)
        # Resolve once and share across engines: backends are lock-safe for
        # multi-threaded use, and one pool beats max_engines separate pools.
        self.backend = resolve_backend(backend, n_jobs)
        self._owns_backend = self.backend is not backend
        self.max_engines = int(max_engines)
        self.request_timeout = float(request_timeout)
        self._engines: "OrderedDict[Tuple[str, str], InferenceEngine]" = OrderedDict()
        self._lock = threading.Lock()
        self._closed = False
        self._started_unix = time.time()
        # dataset -> (resolved latest model_id, expiry), plus the resolved
        # dataset list; keeps per-request directory walks off the /predict
        # hot path.
        self._latest_cache: dict = {}
        self._datasets_cache: Optional[Tuple[list, float]] = None
        self._latest_ttl = 1.0

    def _datasets(self) -> list:
        """TTL-cached ``registry.datasets()`` for the request hot path."""
        now = time.monotonic()
        with self._lock:
            cached = self._datasets_cache
            if cached is not None and cached[1] > now:
                return cached[0]
        datasets = self.registry.datasets()
        with self._lock:
            self._datasets_cache = (datasets, now + self._latest_ttl)
        return datasets

    def _latest_model_id(self, dataset: str) -> str:
        """TTL-cached ``registry.latest_model_id`` for the request hot path.

        A freshly published version is picked up within ``_latest_ttl``
        seconds; clients needing an exact version pass ``model_id``
        explicitly.
        """
        now = time.monotonic()
        with self._lock:
            cached = self._latest_cache.get(dataset)
            if cached is not None and cached[1] > now:
                return cached[0]
        model_id = self.registry.latest_model_id(dataset)
        with self._lock:
            self._latest_cache[dataset] = (model_id, now + self._latest_ttl)
        return model_id

    # ------------------------------------------------------------------ #
    def engine_for(self, dataset: str, model_id: Optional[str] = None) -> InferenceEngine:
        """Return (and cache) the inference engine of one served model."""
        return self.resolve_engine(dataset, model_id)[1]

    def resolve_engine(
        self, dataset: str, model_id: Optional[str] = None
    ) -> Tuple[str, InferenceEngine]:
        """Resolve ``model_id`` (None = latest) and return its cached engine.

        The version is resolved exactly once so the caller can report the
        model that actually served the request.  Model deserialisation runs
        *outside* the application lock — a cold multi-hundred-MB artifact
        must not stall /healthz or requests for already-warm models.
        """
        if model_id is None:
            model_id = self._latest_model_id(dataset)
        key = (dataset, model_id)
        with self._lock:
            if self._closed:
                raise ServiceError("the serving application is closed")
            engine = self._engines.get(key)
            if engine is not None:
                self._engines.move_to_end(key)
                return model_id, engine
        model = self.registry.fetch(dataset, model_id)
        built = InferenceEngine(
            model,
            max_batch_size=self.max_batch_size,
            flush_interval=self.flush_interval,
            backend=self.backend,
        )
        evicted: List[InferenceEngine] = []
        with self._lock:
            if self._closed:
                # close() ran while this engine was being built; it must not
                # outlive the application.
                winner = None
            else:
                winner = self._engines.setdefault(key, built)
                self._engines.move_to_end(key)
                while len(self._engines) > self.max_engines:
                    _, stale = self._engines.popitem(last=False)
                    evicted.append(stale)
        for stale in evicted:
            stale.close()
        if winner is None:
            built.close()
            raise ServiceError("the serving application is closed")
        if winner is not built:
            # Another thread warmed the same model concurrently; keep theirs.
            built.close()
        return model_id, winner

    def close(self) -> None:
        """Shut down every live engine (drains their queues)."""
        with self._lock:
            self._closed = True
            engines = list(self._engines.values())
            self._engines.clear()
        for engine in engines:
            engine.close()
        if self._owns_backend:
            self.backend.close()

    # ------------------------------------------------------------------ #
    def handle_request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Response:
        """Route one request to (status, content_type, body)."""
        route = path.split("?", 1)[0].rstrip("/") or "/"
        segments = [segment for segment in route.split("/") if segment]

        if route == "/healthz" or segments[:1] == ["models"]:
            if method != "GET":
                return json_error(
                    405, f"method {method} not allowed on {route}", allow=["GET"]
                )
            if route == "/healthz":
                return self._handle_healthz()
            return self._handle_models(segments[1:])
        if route == "/predict":
            if method != "POST":
                return json_error(
                    405, "use POST /predict with a JSON body", allow=["POST"]
                )
            return self._handle_predict(body)
        return json_error(404, f"unknown route {route!r}", routes=ROUTES)

    # ------------------------------------------------------------------ #
    def _handle_healthz(self) -> Response:
        with self._lock:
            engine_stats = {
                f"{dataset}/{model_id}": engine.stats()
                for (dataset, model_id), engine in self._engines.items()
            }
        payload = {
            "status": "ok",
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "uptime_seconds": time.time() - self._started_unix,
            # count_models only walks the directory layout (no manifest
            # reads) — liveness probes must stay cheap.
            "models": self.registry.count_models(),
            "cache": self.registry.cache_stats(),
            "engines": engine_stats,
        }
        return 200, "application/json", json.dumps(payload, indent=2)

    def _handle_models(self, segments) -> Response:
        try:
            if not segments:
                records = self.registry.list_models()
                payload = {"models": [record.to_dict() for record in records]}
            elif len(segments) == 1:
                records = self.registry.list_models(segments[0])
                if not records:
                    return json_error(
                        404,
                        f"no models for dataset {segments[0]!r}",
                        datasets=self.registry.datasets(),
                    )
                payload = {"models": [record.to_dict() for record in records]}
            elif len(segments) == 2:
                payload = self.registry.describe(segments[0], segments[1])
            else:
                return json_error(404, "use /models, /models/<dataset> or /models/<dataset>/<model_id>")
        except ModelNotFoundError as exc:
            return json_error(404, str(exc))
        except ArtifactError as exc:
            # The model is listed but its stored payload is unreadable —
            # that's server-side corruption, not a client error.
            return json_error(500, str(exc))
        except ValidationError as exc:
            return json_error(400, str(exc))
        return 200, "application/json", json.dumps(payload, indent=2)

    def _handle_predict(self, body: Optional[bytes]) -> Response:
        try:
            request = json.loads((body or b"").decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return json_error(400, f"request body must be valid JSON: {exc}")
        if not isinstance(request, dict) or "series" not in request:
            return json_error(
                400,
                'request body must be a JSON object with a "series" field '
                "(one series as a list of numbers, or several as a list of lists)",
            )
        for field in ("dataset", "model_id"):
            value = request.get(field)
            if value is not None and not isinstance(value, str):
                return json_error(
                    400, f'"{field}" must be a string, got {type(value).__name__}'
                )

        try:
            series = np.asarray(request["series"], dtype=float)
        except (TypeError, ValueError) as exc:
            return json_error(400, f"series must be numeric: {exc}")
        single = series.ndim == 1

        try:
            dataset = request.get("dataset")
            if dataset is None:
                datasets = self._datasets()
                if len(datasets) == 1:
                    dataset = datasets[0]
                elif not datasets:
                    return json_error(
                        404, "the registry has no published models yet"
                    )
                else:
                    return json_error(
                        400,
                        'the registry serves several datasets; pass a "dataset" field',
                        datasets=datasets,
                    )
            for attempt in range(2):
                resolved_model_id, engine = self.resolve_engine(
                    dataset, request.get("model_id")
                )
                try:
                    if single:
                        predictions = np.asarray(
                            [engine.predict(series, timeout=self.request_timeout)]
                        )
                    else:
                        predictions = engine.predict_many(
                            series, timeout=self.request_timeout
                        )
                    break
                except ServiceError:
                    # The engine may have been LRU-evicted (and closed) between
                    # resolve and predict under heavy multi-model load; one
                    # re-resolve gets a fresh engine.
                    if attempt == 0 and engine.closed:
                        continue
                    raise
        except ModelNotFoundError as exc:
            return json_error(404, str(exc))
        except ArtifactError as exc:
            # Listed-but-unreadable artifact: server-side corruption, 5xx.
            return json_error(500, str(exc))
        except ValidationError as exc:
            return json_error(400, str(exc))
        except ServiceOverloadError as exc:
            # Load shedding, not breakage: 503 plus the engine's suggested
            # back-off, surfaced as a Retry-After header by the HTTP layer.
            return json_error(
                503, str(exc), retry_after=max(1, int(round(exc.retry_after)))
            )
        except ServiceFaultError as exc:
            # A real serving-side fault (dead worker, broken dispatch):
            # retrying blindly will not help, so this is a 500.
            return json_error(500, str(exc))
        except ServiceError as exc:
            # Residual service failures (e.g. a closed application/engine)
            # keep the historical 503 contract.
            return json_error(503, str(exc))

        payload = {
            "dataset": dataset,
            "model_id": resolved_model_id,
            "n_series": int(predictions.shape[0]),
            "predictions": [int(value) for value in predictions],
        }
        if single:
            payload["prediction"] = int(predictions[0])
        return 200, "application/json", json.dumps(payload)


class CombinedApplication:
    """Mounts the model-serving API next to the dashboard on one server.

    Serving routes (``/predict``, ``/models``, ``/healthz``) go to the
    :class:`ServeApplication`; everything else falls through to the
    dashboard, so ``repro serve --registry DIR`` upgrades the existing
    dashboard server instead of needing a second port.
    """

    def __init__(self, dashboard, serve_application_: ServeApplication) -> None:
        self.dashboard = dashboard
        self.serving = serve_application_

    def handle_request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Response:
        route = path.split("?", 1)[0].rstrip("/") or "/"
        head = route.split("/")[1] if route != "/" else ""
        if head in {"predict", "models", "healthz"}:
            return self.serving.handle_request(method, path, body)
        return self.dashboard.handle_request(method, path, body)

    def close(self) -> None:
        self.serving.close()


def serve_models(
    application: ServeApplication,
    *,
    host: str = "127.0.0.1",
    port: int = 8060,
    poll: bool = True,
    ready=None,
):
    """Start the model-serving HTTP server (dashboard plumbing underneath).

    ``port=0`` binds an ephemeral port; pass ``ready`` to receive the
    configured server (and its ``server_port``) before serving begins.
    """
    return serve_application(
        application, host=host, port=port, poll=poll, ready=ready
    )
