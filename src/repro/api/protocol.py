"""The :class:`Estimator` protocol — one contract for k-Graph and baselines.

The paper's claim is comparative (k-Graph against many baselines), so the
reproduction needs every method to be swappable everywhere an estimator is
consumed: the benchmark harness, the serving stack, parameter grids and
the CLI.  These protocols are structural (:func:`typing.runtime_checkable`
``Protocol`` classes): an estimator conforms by shape, not by inheritance,
so :class:`~repro.core.kgraph.KGraph` and the
:class:`~repro.baselines.estimator.BaselineEstimator` adapter both satisfy
them without a shared base class.

* :class:`Estimator` — fit/predict/fit_predict plus the config round-trip
  (``get_config`` / ``from_config``) and a JSON-serialisable ``summary``.
* :class:`SupportsServing` — estimators the serving stack can export: they
  extract a picklable :class:`ServableState` once per model, and validate
  predict input up front so malformed requests fail in the caller's
  thread.
* :class:`ServableState` — the prepared prediction bundle itself; its
  ``predict_batch`` is what inference micro-batches dispatch through any
  :class:`~repro.parallel.ExecutionBackend`.
"""

from __future__ import annotations

from typing import Dict, Protocol, runtime_checkable

import numpy as np

from repro.api.config import EstimatorConfig


@runtime_checkable
class ServableState(Protocol):
    """A prepared, picklable prediction state of one fitted estimator.

    Implementations must be safe to pickle to process workers and to share
    across threads (treat every array as read-only).  ``predict_batch``
    receives an already-validated ``(n_series, length)`` array and returns
    one integer cluster label per series; each series must be processed
    independently, so a prediction never depends on which micro-batch its
    series travelled in.
    """

    def predict_batch(self, array: np.ndarray) -> np.ndarray:
        """Assign validated series to clusters; shape (n,) -> (n,) ints."""
        ...


@runtime_checkable
class Estimator(Protocol):
    """What every registered clustering method exposes.

    ``fit`` accepts an ``(n_series, length)`` array (estimators may also
    accept a :class:`~repro.utils.containers.TimeSeriesDataset`) and
    returns ``self``; ``fit_predict`` returns the integer labels directly.
    ``get_config()`` / ``from_config(cfg)`` round-trip the estimator's
    full parameterisation through a typed
    :class:`~repro.api.config.EstimatorConfig`, with the contract that
    ``type(est).from_config(est.get_config())`` refits bit-identically
    under the same seed.
    """

    def fit(self, data) -> "Estimator":
        ...

    def predict(self, data) -> np.ndarray:
        ...

    def fit_predict(self, data) -> np.ndarray:
        ...

    def summary(self) -> Dict[str, object]:
        ...

    def get_config(self) -> EstimatorConfig:
        ...

    @classmethod
    def from_config(cls, config: EstimatorConfig) -> "Estimator":
        ...


@runtime_checkable
class SupportsServing(Estimator, Protocol):
    """Estimators the serving stack can export, register and serve online.

    ``prediction_state`` extracts the :class:`ServableState` once per
    fitted model (long-lived servers reuse it across requests);
    ``validate_predict_input`` applies the estimator's canonical predict
    validation so the online and offline paths can never drift.
    """

    def prediction_state(self) -> ServableState:
        ...

    def validate_predict_input(self, data) -> np.ndarray:
        ...
