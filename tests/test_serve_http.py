"""Tests for the model-serving JSON API and its HTTP end-to-end path."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.datasets.synthetic import make_cylinder_bell_funnel
from repro.serve.registry import ModelRegistry
from repro.serve.service import CombinedApplication, ServeApplication, serve_models


@pytest.fixture(scope="module")
def fresh_series():
    return make_cylinder_bell_funnel(n_series=6, length=64, noise=0.2, random_state=11).data


@pytest.fixture(scope="module")
def application(fitted_kgraph, tmp_path_factory):
    registry = ModelRegistry(tmp_path_factory.mktemp("registry"), cache_size=2)
    registry.publish(fitted_kgraph, "cbf")
    registry.publish(fitted_kgraph, "cbf")
    app = ServeApplication(registry, max_batch_size=8, flush_interval=0.002)
    yield app
    app.close()


def _json(body: str):
    return json.loads(body)


class TestRouting:
    def test_healthz(self, application):
        status, content_type, body = application.handle_request("GET", "/healthz")
        assert status == 200
        assert content_type == "application/json"
        payload = _json(body)
        assert payload["status"] == "ok"
        assert payload["models"] == 2
        assert "cache" in payload

    def test_models_listing(self, application):
        status, _, body = application.handle_request("GET", "/models")
        assert status == 200
        models = _json(body)["models"]
        assert [(m["dataset"], m["model_id"]) for m in models] == [("cbf", "v1"), ("cbf", "v2")]

    def test_models_for_dataset_and_detail(self, application):
        status, _, body = application.handle_request("GET", "/models/cbf")
        assert status == 200
        assert len(_json(body)["models"]) == 2

        status, _, body = application.handle_request("GET", "/models/cbf/v1")
        assert status == 200
        detail = _json(body)
        assert detail["model_id"] == "v1"
        assert detail["manifest"]["schema_version"] >= 1

    def test_unknown_model_is_json_404(self, application):
        status, content_type, body = application.handle_request("GET", "/models/ghost")
        assert status == 404
        assert content_type == "application/json"
        assert "ghost" in _json(body)["error"]["message"]

    def test_unknown_route_is_json_404_with_route_list(self, application):
        status, _, body = application.handle_request("GET", "/wat")
        assert status == 404
        error = _json(body)["error"]
        assert error["status"] == 404
        assert "/predict" in error["routes"]

    def test_predict_requires_post(self, application):
        status, _, body = application.handle_request("GET", "/predict")
        assert status == 405
        assert _json(body)["error"]["allow"] == ["POST"]

    def test_models_and_healthz_require_get(self, application):
        for route in ("/models", "/models/cbf", "/healthz"):
            status, _, body = application.handle_request("POST", route, b"{}")
            assert status == 405
            assert _json(body)["error"]["allow"] == ["GET"]

    def test_engine_parameters_validated_at_startup(self, fitted_kgraph, tmp_path):
        from repro.exceptions import ValidationError

        registry = ModelRegistry(tmp_path / "registry")
        with pytest.raises(ValidationError, match="max_batch_size"):
            ServeApplication(registry, max_batch_size=0)
        with pytest.raises(ValidationError, match="request_timeout"):
            ServeApplication(registry, request_timeout=0.0)
        with pytest.raises(ValidationError, match="max_engines"):
            ServeApplication(registry, max_engines=0)

    def test_engine_cache_is_bounded(self, fitted_kgraph, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        for _ in range(3):
            registry.publish(fitted_kgraph, "cbf")
        app = ServeApplication(registry, flush_interval=0.001, max_engines=2)
        engines = [app.engine_for("cbf", f"v{n}") for n in (1, 2, 3)]
        assert len(app._engines) == 2
        # The oldest engine was evicted and closed; the newer two still live.
        assert engines[0].closed
        assert not engines[1].closed and not engines[2].closed
        app.close()

    def test_closed_application_returns_503(self, fitted_kgraph, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(fitted_kgraph, "cbf")
        app = ServeApplication(registry, flush_interval=0.001)
        app.close()
        request = json.dumps({"series": [0.0] * 64}).encode()
        status, _, body = app.handle_request("POST", "/predict", request)
        assert status == 503
        assert "closed" in _json(body)["error"]["message"]


class TestPredictRoute:
    def test_single_series(self, application, fitted_kgraph, fresh_series):
        request = json.dumps({"series": fresh_series[0].tolist()}).encode()
        status, _, body = application.handle_request("POST", "/predict", request)
        assert status == 200
        payload = _json(body)
        assert payload["dataset"] == "cbf"
        assert payload["model_id"] == "v2"  # latest by default
        assert payload["prediction"] == int(fitted_kgraph.predict(fresh_series[:1])[0])

    def test_batch_of_series_matches_offline_predict(self, application, fitted_kgraph, fresh_series):
        request = json.dumps({"series": fresh_series.tolist(), "model_id": "v1"}).encode()
        status, _, body = application.handle_request("POST", "/predict", request)
        assert status == 200
        payload = _json(body)
        assert payload["predictions"] == fitted_kgraph.predict(fresh_series).tolist()
        assert payload["n_series"] == len(fresh_series)

    def test_invalid_json_body(self, application):
        status, _, body = application.handle_request("POST", "/predict", b"{not json")
        assert status == 400
        assert "JSON" in _json(body)["error"]["message"]

    def test_missing_series_field(self, application):
        status, _, body = application.handle_request("POST", "/predict", b"{}")
        assert status == 400
        assert "series" in _json(body)["error"]["message"]

    def test_too_short_series_is_400(self, application):
        request = json.dumps({"series": [1.0, 2.0, 3.0]}).encode()
        status, _, body = application.handle_request("POST", "/predict", request)
        assert status == 400
        assert "length" in _json(body)["error"]["message"]

    def test_unknown_model_id_is_404(self, application, fresh_series):
        request = json.dumps({"series": fresh_series[0].tolist(), "model_id": "v99"}).encode()
        status, _, body = application.handle_request("POST", "/predict", request)
        assert status == 404

    def test_non_string_dataset_is_400(self, application, fresh_series):
        request = json.dumps({"series": fresh_series[0].tolist(), "dataset": ["cbf"]}).encode()
        status, _, body = application.handle_request("POST", "/predict", request)
        assert status == 400
        assert "dataset" in _json(body)["error"]["message"]

    def test_corrupt_artifact_is_500_not_404(self, fitted_kgraph, fresh_series, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        record = registry.publish(fitted_kgraph, "cbf")
        (record.path / "arrays.npz").write_bytes(b"not an npz")
        app = ServeApplication(registry, flush_interval=0.001)
        request = json.dumps({"series": fresh_series[0].tolist()}).encode()
        status, _, body = app.handle_request("POST", "/predict", request)
        assert status == 500
        app.close()


class TestCombinedApplication:
    def test_serving_routes_and_dashboard_routes_coexist(self, application):
        class _StubDashboard:
            def handle_request(self, method, path, body=None):
                return 200, "text/html", "dashboard page"

        combined = CombinedApplication(_StubDashboard(), application)
        status, _, body = combined.handle_request("GET", "/healthz")
        assert status == 200 and _json(body)["status"] == "ok"
        status, _, body = combined.handle_request("GET", "/?dataset=x")
        assert status == 200 and body == "dashboard page"


class TestEndToEndHTTP:
    def test_predict_over_real_http(self, application, fitted_kgraph, fresh_series):
        server = serve_models(application, host="127.0.0.1", port=0, poll=False)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            base = f"http://127.0.0.1:{server.server_address[1]}"

            with urllib.request.urlopen(f"{base}/healthz", timeout=10) as response:
                assert response.status == 200
                assert json.loads(response.read())["status"] == "ok"

            request = urllib.request.Request(
                f"{base}/predict",
                data=json.dumps({"series": fresh_series.tolist()}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                assert response.status == 200
                payload = json.loads(response.read())
            assert payload["predictions"] == fitted_kgraph.predict(fresh_series).tolist()

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/nope", timeout=10)
            assert excinfo.value.code == 404
            assert json.loads(excinfo.value.read())["error"]["status"] == 404
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_concurrent_http_clients_coalesce_into_batches(self, fitted_kgraph, fresh_series, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(fitted_kgraph, "cbf")
        app = ServeApplication(registry, max_batch_size=8, flush_interval=0.05)
        server = serve_models(app, host="127.0.0.1", port=0, poll=False)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            base = f"http://127.0.0.1:{server.server_address[1]}"
            expected = fitted_kgraph.predict(fresh_series).tolist()
            results = [None] * len(fresh_series)

            def client(index):
                request = urllib.request.Request(
                    f"{base}/predict",
                    data=json.dumps({"series": fresh_series[index].tolist()}).encode(),
                    method="POST",
                )
                with urllib.request.urlopen(request, timeout=30) as response:
                    results[index] = json.loads(response.read())["prediction"]

            clients = [threading.Thread(target=client, args=(i,)) for i in range(len(fresh_series))]
            for c in clients:
                c.start()
            for c in clients:
                c.join()
            assert results == expected
            stats = app.engine_for("cbf").stats()
            assert stats["requests"] == len(fresh_series)
            assert stats["batches"] <= len(fresh_series)  # at least some coalescing possible
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            app.close()


class TestDegradation:
    """Load shedding vs real faults: 503 + Retry-After vs 500."""

    def test_engine_timeout_is_503_with_retry_after_hint(
        self, fitted_kgraph, fresh_series, tmp_path
    ):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(fitted_kgraph, "cbf")
        # The request times out (1 ms) long before the micro-batch flushes
        # (200 ms): the engine sheds load instead of faulting.
        app = ServeApplication(registry, flush_interval=0.2, request_timeout=0.001)
        try:
            request = json.dumps({"series": fresh_series[0].tolist()}).encode()
            status, _, body = app.handle_request("POST", "/predict", request)
            assert status == 503
            error = _json(body)["error"]
            assert "retry_after" in error
            assert error["retry_after"] >= 1
        finally:
            app.close()

    def test_retry_after_surfaces_as_http_header(
        self, fitted_kgraph, fresh_series, tmp_path
    ):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(fitted_kgraph, "cbf")
        app = ServeApplication(registry, flush_interval=0.2, request_timeout=0.001)
        server = serve_models(app, host="127.0.0.1", port=0, poll=False)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            base = f"http://127.0.0.1:{server.server_address[1]}"
            request = urllib.request.Request(
                f"{base}/predict",
                data=json.dumps({"series": fresh_series[0].tolist()}).encode(),
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] is not None
            assert int(excinfo.value.headers["Retry-After"]) >= 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            app.close()

    def test_engine_fault_is_500_without_retry_after(self, fitted_kgraph, fresh_series, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        record = registry.publish(fitted_kgraph, "cbf")
        app = ServeApplication(registry, flush_interval=0.001)
        try:
            # Corrupt the artifact after publication: loading it inside the
            # engine is a real fault, not load shedding.
            (record.path / "arrays.npz").write_bytes(b"not an npz")
            request = json.dumps({"series": fresh_series[0].tolist()}).encode()
            status, _, body = app.handle_request("POST", "/predict", request)
            assert status == 500
            assert "retry_after" not in _json(body)["error"]
        finally:
            app.close()

    def test_closed_application_stays_503(self, fitted_kgraph, tmp_path):
        # The taxonomy change must not reclassify the generic "closed"
        # ServiceError: still 503 (the PR 6 contract).
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(fitted_kgraph, "cbf")
        app = ServeApplication(registry, flush_interval=0.001)
        app.close()
        request = json.dumps({"series": [0.0] * 64}).encode()
        status, _, body = app.handle_request("POST", "/predict", request)
        assert status == 503


class TestEphemeralPortAndReady:
    """``port=0`` + the ``ready`` hook: how callers learn a bound address."""

    def test_serve_models_ready_reports_ephemeral_port(self, application):
        seen = {}
        server = serve_models(
            application,
            host="127.0.0.1",
            port=0,
            poll=False,
            ready=lambda bound: seen.update(port=bound.server_port),
        )
        try:
            assert server.server_port > 0
            assert seen["port"] == server.server_port
        finally:
            server.server_close()

    def test_serve_dashboard_forwards_ready(self, fitted_kgraph):
        from repro.viz.server import DashboardApplication, serve_dashboard

        seen = {}
        server = serve_dashboard(
            DashboardApplication(),
            host="127.0.0.1",
            port=0,
            poll=False,
            ready=lambda bound: seen.update(port=bound.server_port),
        )
        try:
            assert seen["port"] == server.server_port > 0
        finally:
            server.server_close()
