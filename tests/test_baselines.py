"""Unit tests for the neural substrate, deep baselines and the method registry."""

import numpy as np
import pytest

from repro.baselines.deep import DAEClustering, DTCClustering, SOMVAEClustering
from repro.baselines.neural import DenseAutoencoder
from repro.baselines.registry import (
    all_baseline_names,
    available_methods,
    get_method,
    run_method,
)
from repro.exceptions import NotFittedError, ValidationError
from repro.metrics.clustering import adjusted_rand_index


class TestDenseAutoencoder:
    def test_loss_decreases(self, rng):
        data = rng.normal(size=(60, 20))
        model = DenseAutoencoder(latent_dim=4, n_epochs=30, random_state=0).fit(data)
        assert model.losses_[-1] < model.losses_[0]

    def test_encode_shape(self, rng):
        data = rng.normal(size=(40, 16))
        model = DenseAutoencoder(latent_dim=3, n_epochs=10, random_state=0).fit(data)
        assert model.encode(data).shape == (40, 3)

    def test_reconstruction_better_than_mean_baseline(self, rng):
        # Structured data: the AE must beat predicting the column means.
        latent = rng.normal(size=(80, 2))
        mixing = rng.normal(size=(2, 12))
        data = latent @ mixing + rng.normal(0, 0.05, size=(80, 12))
        model = DenseAutoencoder(latent_dim=2, n_epochs=120, random_state=0).fit(data)
        baseline = float(np.mean((data - data.mean(axis=0)) ** 2))
        assert model.reconstruction_error(data) < baseline

    def test_deterministic(self, rng):
        data = rng.normal(size=(30, 10))
        a = DenseAutoencoder(latent_dim=2, n_epochs=5, random_state=7).fit(data).encode(data)
        b = DenseAutoencoder(latent_dim=2, n_epochs=5, random_state=7).fit(data).encode(data)
        assert np.allclose(a, b)

    def test_not_fitted(self, rng):
        with pytest.raises(NotFittedError):
            DenseAutoencoder().encode(rng.normal(size=(3, 5)))

    def test_feature_mismatch(self, rng):
        model = DenseAutoencoder(latent_dim=2, n_epochs=3, random_state=0).fit(rng.normal(size=(20, 8)))
        with pytest.raises(ValidationError):
            model.encode(rng.normal(size=(2, 9)))

    def test_invalid_learning_rate(self):
        with pytest.raises(ValidationError):
            DenseAutoencoder(learning_rate=0.0)


class TestDeepBaselines:
    @pytest.mark.parametrize("cls", [DAEClustering, DTCClustering, SOMVAEClustering])
    def test_produces_requested_clusters(self, cls, small_dataset):
        model = cls(n_clusters=3, n_epochs=15, random_state=0)
        labels = model.fit_predict(small_dataset.data)
        assert labels.shape == (small_dataset.n_series,)
        assert np.unique(labels).size <= 3

    def test_dae_beats_chance_on_separable_data(self, small_dataset):
        labels = DAEClustering(n_clusters=3, n_epochs=40, random_state=0).fit_predict(
            small_dataset.data
        )
        assert adjusted_rand_index(small_dataset.labels, labels) > 0.0

    def test_dtc_refinement_keeps_cluster_count(self, small_dataset):
        model = DTCClustering(n_clusters=3, n_epochs=15, n_refine_iter=10, random_state=0)
        model.fit(small_dataset.data)
        assert model.cluster_centers_.shape[0] == 3
        assert model.embedding_.shape[0] == small_dataset.n_series


class TestRegistry:
    def test_fourteen_baselines(self):
        assert len(all_baseline_names()) == 14
        assert "kgraph" not in all_baseline_names()
        assert "kgraph" in available_methods()

    def test_every_registered_name_resolves(self):
        for name in available_methods():
            method = get_method(name)
            assert method.name == name
            assert method.family in {"raw", "feature", "density", "model", "deep", "graph"}

    def test_unknown_method(self):
        with pytest.raises(ValidationError):
            get_method("not_a_method")

    @pytest.mark.parametrize(
        "name", ["kmeans", "kmeans_znorm", "featts_like", "time2feat_like", "gmm", "spectral", "agglomerative", "birch"]
    )
    def test_fast_methods_run_and_score(self, name, small_dataset):
        labels = run_method(name, small_dataset, random_state=0)
        assert labels.shape == (small_dataset.n_series,)
        assert labels.min() >= 0  # noise remapped to singletons
        assert np.array_equal(labels, np.asarray(labels, dtype=int))

    @pytest.mark.parametrize("name", ["dbscan", "optics", "meanshift", "som"])
    def test_density_and_som_methods_run(self, name, small_dataset):
        labels = run_method(name, small_dataset, random_state=0)
        assert labels.shape == (small_dataset.n_series,)
        assert labels.min() >= 0

    def test_kshape_and_kgraph_beat_raw_kmeans_on_shape_data(self, small_dataset):
        truth = small_dataset.labels
        ari = {
            name: adjusted_rand_index(truth, run_method(name, small_dataset, random_state=0))
            for name in ("kmeans", "kgraph")
        }
        assert ari["kgraph"] > ari["kmeans"]

    def test_default_n_clusters_uses_ground_truth(self, small_dataset):
        labels = run_method("kmeans", small_dataset, random_state=0)
        assert np.unique(labels).size == small_dataset.n_classes

    def test_label_length_validation(self, small_dataset):
        method = get_method("kmeans")
        with pytest.raises(ValidationError):
            method.fit_predict(small_dataset, 0)
