"""Setuptools shim enabling legacy editable installs (pip install -e .).

The pyproject.toml carries the real metadata; this file only exists so the
offline environment (no wheel package available) can fall back to the
``setup.py develop`` editable-install path.
"""

from setuptools import setup

setup()
