"""External clustering-quality measures.

These are the measures exposed in the Graphint Benchmark frame (ARI, RI,
NMI, AMI) plus a few extra standard ones (purity, V-measure, Fowlkes-Mallows)
so the benchmark harness can report a complete picture.

All implementations follow the textbook contingency-table definitions and are
validated by the test suite against hand-computed examples and invariants
(symmetry, permutation invariance, bounds).
"""

from __future__ import annotations

from math import lgamma
from typing import Dict

import numpy as np

from repro.metrics.contingency import contingency_matrix, pair_confusion_matrix
from repro.utils.validation import check_labels


def _comb2(values: np.ndarray) -> np.ndarray:
    """Vectorised n-choose-2."""
    values = np.asarray(values, dtype=np.float64)
    return values * (values - 1.0) / 2.0


def rand_index(labels_true, labels_pred) -> float:
    """Rand index: fraction of sample pairs on which the partitions agree."""
    tn, fp, fn, tp = pair_confusion_matrix(labels_true, labels_pred).ravel()
    total = tn + fp + fn + tp
    if total == 0:
        return 1.0
    return float((tp + tn) / total)


def adjusted_rand_index(labels_true, labels_pred) -> float:
    """Adjusted Rand index (chance-corrected RI), in [-1, 1].

    This is the consistency criterion W_c(ℓ) of the paper: k-Graph uses
    ``ARI(L, L_ℓ)`` to measure the agreement between the final labels and the
    per-length partitions.
    """
    table = contingency_matrix(labels_true, labels_pred).astype(np.float64)
    n = table.sum()
    if n < 2:
        return 1.0
    sum_comb_cells = float(np.sum(_comb2(table)))
    sum_comb_rows = float(np.sum(_comb2(table.sum(axis=1))))
    sum_comb_cols = float(np.sum(_comb2(table.sum(axis=0))))
    total_pairs = float(_comb2(np.array([n]))[0])
    expected = sum_comb_rows * sum_comb_cols / total_pairs if total_pairs > 0 else 0.0
    maximum = 0.5 * (sum_comb_rows + sum_comb_cols)
    denominator = maximum - expected
    if abs(denominator) < 1e-15:
        # Both partitions are trivial (all singletons or one block): define as 1
        # when they are identical in structure, 0 otherwise.
        return 1.0 if sum_comb_cells == maximum else 0.0
    return float((sum_comb_cells - expected) / denominator)


def _entropy(counts: np.ndarray) -> float:
    """Shannon entropy (nats) of a count vector."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return 0.0
    probabilities = counts[counts > 0] / total
    return float(-np.sum(probabilities * np.log(probabilities)))


def mutual_information(labels_true, labels_pred) -> float:
    """Mutual information (nats) between two labelings."""
    table = contingency_matrix(labels_true, labels_pred).astype(np.float64)
    n = table.sum()
    if n == 0:
        return 0.0
    joint = table / n
    row = joint.sum(axis=1, keepdims=True)
    col = joint.sum(axis=0, keepdims=True)
    outer = row @ col
    mask = joint > 0
    return float(np.sum(joint[mask] * (np.log(joint[mask]) - np.log(outer[mask]))))


def normalized_mutual_information(labels_true, labels_pred, average: str = "arithmetic") -> float:
    """Normalised mutual information in [0, 1].

    ``average`` selects the normalisation: ``"arithmetic"`` (default, sklearn's
    default too), ``"geometric"``, ``"min"`` or ``"max"``.
    """
    true = check_labels(labels_true, name="labels_true")
    pred = check_labels(labels_pred, name="labels_pred", n_samples=true.shape[0])
    h_true = _entropy(np.unique(true, return_counts=True)[1])
    h_pred = _entropy(np.unique(pred, return_counts=True)[1])
    mi = mutual_information(true, pred)
    if h_true == 0.0 and h_pred == 0.0:
        return 1.0
    if average == "arithmetic":
        denom = 0.5 * (h_true + h_pred)
    elif average == "geometric":
        denom = float(np.sqrt(h_true * h_pred))
    elif average == "min":
        denom = min(h_true, h_pred)
    elif average == "max":
        denom = max(h_true, h_pred)
    else:
        raise ValueError(f"unknown average {average!r}")
    if denom <= 0:
        return 0.0
    return float(np.clip(mi / denom, 0.0, 1.0))


def expected_mutual_information(labels_true, labels_pred) -> float:
    """Expected mutual information under the permutation (hypergeometric) model.

    Needed for the adjusted mutual information.  Uses the standard
    O(R * C * n) summation with log-gamma terms for numerical stability.
    """
    table = contingency_matrix(labels_true, labels_pred)
    n = int(table.sum())
    if n == 0:
        return 0.0
    a = table.sum(axis=1).astype(np.int64)
    b = table.sum(axis=0).astype(np.int64)
    emi = 0.0
    log_n = np.log(n)
    for ai in a:
        for bj in b:
            nij_start = max(1, ai + bj - n)
            nij_end = min(ai, bj)
            if nij_start > nij_end:
                continue
            for nij in range(nij_start, nij_end + 1):
                term1 = nij / n * (np.log(nij) - np.log(ai) - np.log(bj) + log_n)
                log_prob = (
                    lgamma(ai + 1)
                    + lgamma(bj + 1)
                    + lgamma(n - ai + 1)
                    + lgamma(n - bj + 1)
                    - lgamma(n + 1)
                    - lgamma(nij + 1)
                    - lgamma(ai - nij + 1)
                    - lgamma(bj - nij + 1)
                    - lgamma(n - ai - bj + nij + 1)
                )
                emi += term1 * np.exp(log_prob)
    return float(emi)


def adjusted_mutual_information(labels_true, labels_pred) -> float:
    """Adjusted mutual information (chance-corrected NMI), arithmetic average."""
    true = check_labels(labels_true, name="labels_true")
    pred = check_labels(labels_pred, name="labels_pred", n_samples=true.shape[0])
    h_true = _entropy(np.unique(true, return_counts=True)[1])
    h_pred = _entropy(np.unique(pred, return_counts=True)[1])
    if h_true == 0.0 and h_pred == 0.0:
        return 1.0
    mi = mutual_information(true, pred)
    emi = expected_mutual_information(true, pred)
    denominator = 0.5 * (h_true + h_pred) - emi
    if abs(denominator) < 1e-15:
        return 0.0
    ami = (mi - emi) / denominator
    return float(np.clip(ami, -1.0, 1.0))


def homogeneity_score(labels_true, labels_pred) -> float:
    """Homogeneity: each cluster contains only members of a single class."""
    true = check_labels(labels_true, name="labels_true")
    pred = check_labels(labels_pred, name="labels_pred", n_samples=true.shape[0])
    h_true = _entropy(np.unique(true, return_counts=True)[1])
    if h_true == 0.0:
        return 1.0
    mi = mutual_information(true, pred)
    return float(np.clip(mi / h_true, 0.0, 1.0))


def completeness_score(labels_true, labels_pred) -> float:
    """Completeness: all members of a class are assigned to the same cluster."""
    return homogeneity_score(labels_pred, labels_true)


def v_measure_score(labels_true, labels_pred, beta: float = 1.0) -> float:
    """Harmonic mean of homogeneity and completeness."""
    hom = homogeneity_score(labels_true, labels_pred)
    com = completeness_score(labels_true, labels_pred)
    if hom + com == 0.0:
        return 0.0
    return float((1 + beta) * hom * com / (beta * hom + com))


def purity_score(labels_true, labels_pred) -> float:
    """Purity: fraction of samples in the majority true class of their cluster."""
    table = contingency_matrix(labels_true, labels_pred)
    n = table.sum()
    if n == 0:
        return 1.0
    return float(table.max(axis=0).sum() / n)


def fowlkes_mallows_index(labels_true, labels_pred) -> float:
    """Fowlkes-Mallows index: geometric mean of pairwise precision and recall."""
    tn, fp, fn, tp = pair_confusion_matrix(labels_true, labels_pred).ravel()
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return float(np.sqrt(precision * recall))


def clustering_report(labels_true, labels_pred) -> Dict[str, float]:
    """Compute every measure at once (used by the benchmark harness)."""
    return {
        "ari": adjusted_rand_index(labels_true, labels_pred),
        "ri": rand_index(labels_true, labels_pred),
        "nmi": normalized_mutual_information(labels_true, labels_pred),
        "ami": adjusted_mutual_information(labels_true, labels_pred),
        "purity": purity_score(labels_true, labels_pred),
        "vmeasure": v_measure_score(labels_true, labels_pred),
        "fmi": fowlkes_mallows_index(labels_true, labels_pred),
    }
