"""Persistence of benchmark results as JSON (and CSV export).

The Benchmark frame reads a pre-computed result file when available so the
GUI loads instantly; the benchmark harness writes these files.

JSON payloads are wrapped in a versioned envelope —
``{"format": ..., "schema_version": ..., "results": [...]}`` — guarded by
the same :func:`repro.utils.schema.check_schema_version` check the model
artifact format uses, so files written by newer releases fail with an
"upgrade the library" message.  Bare-list files written before versioning
are still accepted.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Sequence, Union

from repro.benchmark.runner import BenchmarkResult
from repro.exceptions import BenchmarkError, ValidationError
from repro.utils.schema import check_schema_version, schema_envelope

STORE_FORMAT = "benchmark-results"
STORE_SCHEMA_VERSION = 1


def save_results(
    results: Sequence[BenchmarkResult], path: Union[str, Path], *, fmt: str = "json"
) -> Path:
    """Write results to ``path`` in JSON (default) or CSV format."""
    if not results:
        raise BenchmarkError("cannot save an empty result set")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = [result.to_dict() for result in results]
    if fmt == "json":
        payload = schema_envelope(STORE_SCHEMA_VERSION, STORE_FORMAT)
        payload["results"] = rows
        with path.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
    elif fmt == "csv":
        fieldnames = sorted({key for row in rows for key in row})
        with path.open("w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            writer.writerows(rows)
    else:
        raise BenchmarkError(f"unknown format {fmt!r}; use 'json' or 'csv'")
    return path


def load_results(path: Union[str, Path]) -> List[BenchmarkResult]:
    """Load results previously written by :func:`save_results` (JSON only)."""
    path = Path(path)
    if not path.exists():
        raise BenchmarkError(f"result file not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        found_format = payload.get("format")
        if found_format is not None and found_format != STORE_FORMAT:
            raise BenchmarkError(
                f"{path} holds format {found_format!r}, expected {STORE_FORMAT!r}"
            )
        try:
            check_schema_version(
                payload.get("schema_version"),
                supported=STORE_SCHEMA_VERSION,
                context=f"benchmark result file {path}",
            )
        except ValidationError as exc:
            # The store's error contract is BenchmarkError throughout.
            raise BenchmarkError(str(exc)) from exc
        rows = payload.get("results")
        if not isinstance(rows, list):
            raise BenchmarkError(
                f"benchmark result file {path} has no 'results' list"
            )
    elif isinstance(payload, list):
        # Legacy pre-versioning layout: a bare list of result rows.
        rows = payload
    else:
        raise BenchmarkError(
            "result file must contain a JSON list or a versioned envelope"
        )
    return [BenchmarkResult.from_dict(row) for row in rows]
