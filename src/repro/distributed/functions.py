"""Built-in worker functions: diagnostics, smoke tests and benchmarks.

Tiny, dependency-free job functions every worker resolves out of the box.
They exist so a fresh deployment can be exercised end-to-end (``echo`` a
payload through the pool, ``sum_abs`` a shipped array, measure transfer
with ``scale_array``) before any real workload is registered, and so the
test-suite/benchmark workers need no side-channel module injection.
"""

from __future__ import annotations

import time
from typing import Any, Tuple

import numpy as np

from repro.distributed.registry import register_worker_function
from repro.exceptions import ValidationError


@register_worker_function
def echo(job: Any) -> Any:
    """Return the job payload unchanged (round-trip/codec diagnostic)."""
    return job


@register_worker_function
def square(value: float) -> float:
    """Square one number."""
    return float(value) ** 2


@register_worker_function
def checked_sqrt(value: float) -> float:
    """Square root that rejects negatives (per-job error-capture probe)."""
    value = float(value)
    if value < 0:
        raise ValidationError(f"checked_sqrt needs a non-negative value, got {value}")
    return float(np.sqrt(value))


@register_worker_function
def sum_abs(array: np.ndarray) -> float:
    """Sum of absolute values of a shipped array (transfer diagnostic)."""
    return float(np.abs(np.asarray(array)).sum())


@register_worker_function
def scale_array(job: Tuple[np.ndarray, float]) -> np.ndarray:
    """Return ``array * factor`` — a large-result transfer diagnostic."""
    array, factor = job
    return np.asarray(array) * float(factor)


@register_worker_function
def sleep_echo(job: Tuple[float, Any]) -> Any:
    """Sleep ``seconds`` then return ``value`` (timeout/deadline probe)."""
    seconds, value = job
    time.sleep(float(seconds))
    return value
