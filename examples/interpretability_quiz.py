"""Scenario 1: the interpretability test with simulated participants.

Run with::

    python examples/interpretability_quiz.py

Reproduces the quiz of the Interpretability-test frame: for a chosen dataset,
participants must assign five series to clusters using only each method's
cluster representation (centroids for k-Means / k-Shape, graphoids for
k-Graph).  Human participants are replaced by the simulated user model; the
script prints each method's average participant score.
"""

from __future__ import annotations

from repro.datasets import generate_dataset
from repro.viz.session import GraphintSession


def main() -> None:
    for dataset_name in ("cylinder_bell_funnel", "two_patterns", "shapelet_classes"):
        dataset = generate_dataset(dataset_name, random_state=3)
        session = GraphintSession(dataset, n_lengths=3, random_state=3).fit()
        session.build_quizzes(n_questions=5, n_users=5)

        print(f"\n=== interpretability test on {dataset_name} ===")
        print("clustering accuracy (ARI vs ground truth):")
        summary = session.summary()
        for method, ari in sorted(summary["ari"].items()):
            print(f"  {method:<8} {ari:.3f}")
        print("simulated participant score (fraction of correct assignments):")
        for method, score in sorted(session.quiz_scores.items(), key=lambda kv: -kv[1]):
            print(f"  {method:<8} {score:.2f}")
        best = max(session.quiz_scores, key=session.quiz_scores.get)
        print(f"most interpretable representation: {best}")


if __name__ == "__main__":
    main()
