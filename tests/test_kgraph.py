"""Unit and behavioural tests for the KGraph estimator."""

import numpy as np
import pytest

from repro.core.kgraph import KGraph
from repro.exceptions import NotFittedError, ValidationError
from repro.metrics.clustering import adjusted_rand_index


class TestFitBasics:
    def test_labels_shape_and_k(self, fitted_kgraph, small_dataset):
        labels = fitted_kgraph.labels_
        assert labels.shape == (small_dataset.n_series,)
        assert np.unique(labels).size == 3

    def test_accuracy_on_pattern_dataset(self, fitted_kgraph, small_dataset):
        assert adjusted_rand_index(small_dataset.labels, fitted_kgraph.labels_) > 0.6

    def test_result_artifacts_complete(self, fitted_kgraph):
        result = fitted_kgraph.result_
        assert len(result.graphs) == len(result.partitions) == len(result.length_scores)
        assert result.optimal_length in result.graphs
        assert result.consensus_matrix.shape == (result.labels.shape[0],) * 2
        assert result.n_clusters == 3
        assert set(result.lambda_graphoids) == set(np.unique(result.labels).tolist())
        assert set(result.gamma_graphoids) == set(np.unique(result.labels).tolist())
        assert result.timings  # every stage recorded

    def test_consensus_matrix_is_valid_affinity(self, fitted_kgraph):
        matrix = fitted_kgraph.consensus_matrix_
        assert np.all(matrix >= 0.0) and np.all(matrix <= 1.0)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_fit_predict_equals_labels(self, small_dataset):
        model = KGraph(n_clusters=3, n_lengths=2, random_state=1)
        labels = model.fit_predict(small_dataset.data)
        assert np.array_equal(labels, model.labels_)

    def test_deterministic_given_seed(self, small_dataset):
        a = KGraph(n_clusters=3, n_lengths=2, random_state=9).fit_predict(small_dataset.data)
        b = KGraph(n_clusters=3, n_lengths=2, random_state=9).fit_predict(small_dataset.data)
        assert np.array_equal(a, b)

    def test_explicit_lengths(self, small_dataset):
        model = KGraph(n_clusters=3, lengths=[10, 20], random_state=0)
        model.fit(small_dataset.data)
        assert sorted(model.result_.graphs) == [10, 20]

    def test_invalid_explicit_lengths_filtered(self, small_dataset):
        model = KGraph(n_clusters=3, lengths=[10, small_dataset.length + 5], random_state=0)
        model.fit(small_dataset.data)
        assert sorted(model.result_.graphs) == [10]

    def test_all_lengths_invalid_rejected(self, small_dataset):
        model = KGraph(n_clusters=3, lengths=[small_dataset.length * 2], random_state=0)
        with pytest.raises(ValidationError):
            model.fit(small_dataset.data)

    def test_summary_serialisable(self, fitted_kgraph):
        import json

        text = json.dumps(fitted_kgraph.result_.summary())
        assert "optimal_length" in text


class TestAccessorsAndErrors:
    def test_not_fitted_properties(self):
        model = KGraph(n_clusters=2)
        with pytest.raises(NotFittedError):
            _ = model.optimal_length_
        with pytest.raises(NotFittedError):
            model.graphoids()
        with pytest.raises(NotFittedError):
            model.node_statistics()

    def test_constructor_validation(self):
        with pytest.raises(ValidationError):
            KGraph(n_clusters=1)
        with pytest.raises(ValidationError):
            KGraph(n_clusters=3, feature_mode="magic")
        with pytest.raises(ValidationError):
            KGraph(n_clusters=3, lambda_threshold=1.5)
        with pytest.raises(ValidationError):
            KGraph(n_clusters=3, lengths=[])

    def test_too_few_series(self):
        with pytest.raises(ValidationError):
            KGraph(n_clusters=5).fit(np.random.default_rng(0).normal(size=(3, 64)))

    def test_graphoids_kinds(self, fitted_kgraph):
        assert set(fitted_kgraph.graphoids("lambda")) == set(fitted_kgraph.graphoids("gamma"))
        with pytest.raises(ValidationError):
            fitted_kgraph.graphoids("delta")

    def test_node_statistics_structure(self, fitted_kgraph):
        statistics = fitted_kgraph.node_statistics()
        graph = fitted_kgraph.optimal_graph_
        assert set(statistics) == set(graph.nodes())
        sample = statistics[graph.nodes()[0]]
        assert set(sample) == {"representativity", "exclusivity"}
        clusters = set(np.unique(fitted_kgraph.labels_).tolist())
        assert set(sample["exclusivity"]) == clusters

    def test_recompute_graphoids_monotone(self, fitted_kgraph):
        loose = fitted_kgraph.recompute_graphoids(0.1, 0.1)
        strict = fitted_kgraph.recompute_graphoids(0.9, 0.9)
        for cluster in loose["gamma"]:
            assert strict["gamma"][cluster].n_nodes <= loose["gamma"][cluster].n_nodes
            assert strict["lambda"][cluster].n_nodes <= loose["lambda"][cluster].n_nodes

    def test_recompute_graphoids_threshold_validated(self, fitted_kgraph):
        with pytest.raises(ValidationError):
            fitted_kgraph.recompute_graphoids(2.0, 0.5)


class TestPredict:
    def test_predict_reproduces_training_labels(self, fitted_kgraph, small_dataset):
        # Out-of-sample assignment of the training series must agree with the
        # fitted labels far better than chance (it is a nearest-profile
        # approximation of the consensus assignment, not an exact replay).
        predicted = fitted_kgraph.predict(small_dataset.data)
        assert predicted.shape == (small_dataset.n_series,)
        assert adjusted_rand_index(fitted_kgraph.labels_, predicted) > 0.5

    def test_predict_new_series_from_known_classes(self, fitted_kgraph):
        from repro.datasets.synthetic import make_cylinder_bell_funnel

        fresh = make_cylinder_bell_funnel(n_series=12, length=64, noise=0.2, random_state=99)
        predicted = fitted_kgraph.predict(fresh.data)
        assert predicted.shape == (12,)
        assert set(predicted.tolist()) <= set(np.unique(fitted_kgraph.labels_).tolist())
        # New members of the same generative classes should mostly agree with
        # the ground-truth partition (up to label permutation).
        assert adjusted_rand_index(fresh.labels, predicted) > 0.3

    def test_predict_requires_fit_with_actionable_message(self):
        with pytest.raises(NotFittedError, match=r"call fit\(data\) first"):
            KGraph(n_clusters=2).predict(np.zeros((3, 64)))

    def test_predict_rejects_too_short_series(self, fitted_kgraph):
        too_short = np.zeros((2, fitted_kgraph.optimal_length_))
        with pytest.raises(ValidationError) as excinfo:
            fitted_kgraph.predict(too_short)
        # The message must name both the offending and the required length.
        message = str(excinfo.value)
        assert str(fitted_kgraph.optimal_length_) in message
        assert str(fitted_kgraph.optimal_length_ + 1) in message

    def test_predict_rejects_malformed_input_before_embedding_code(self, fitted_kgraph):
        with pytest.raises(ValidationError, match="predict input"):
            fitted_kgraph.predict(np.zeros((2, 2, 2)))
        with pytest.raises(ValidationError, match="NaN"):
            fitted_kgraph.predict(np.full((2, 64), np.nan))
        with pytest.raises(ValidationError, match="numeric"):
            fitted_kgraph.predict([["a", "b"], ["c", "d"]])

    def test_predict_accepts_a_single_1d_series(self, fitted_kgraph, small_dataset):
        single = fitted_kgraph.predict(small_dataset.data[0])
        batch = fitted_kgraph.predict(small_dataset.data[:1])
        assert np.array_equal(single, batch)

    def test_prediction_state_matches_predict(self, fitted_kgraph, small_dataset):
        from repro.core.kgraph import predict_with_state

        state = fitted_kgraph.prediction_state()
        assert state.length == fitted_kgraph.optimal_length_
        assert state.patterns.shape[0] == fitted_kgraph.optimal_graph_.n_nodes
        expected = fitted_kgraph.predict(small_dataset.data)
        assert np.array_equal(predict_with_state(state, small_dataset.data), expected)

    def test_prediction_state_requires_fit(self):
        with pytest.raises(NotFittedError):
            KGraph(n_clusters=2).prediction_state()


class TestBehaviour:
    def test_feature_mode_ablation_runs(self, small_dataset):
        for mode in ("nodes", "edges", "both"):
            model = KGraph(n_clusters=3, n_lengths=2, feature_mode=mode, random_state=0)
            labels = model.fit_predict(small_dataset.data)
            assert np.unique(labels).size == 3

    def test_noise_dataset_scores_near_zero(self):
        from repro.datasets.synthetic import make_noise_only

        dataset = make_noise_only(n_series=24, length=64, random_state=0)
        model = KGraph(n_clusters=2, n_lengths=2, random_state=0)
        labels = model.fit_predict(dataset.data)
        assert abs(adjusted_rand_index(dataset.labels, labels)) < 0.25

    def test_consensus_labels_consistent_with_best_partition(self, fitted_kgraph):
        # The final labels should agree with at least one per-length partition
        # better than chance (the consensus cannot be worse than all parts).
        result = fitted_kgraph.result_
        agreements = [
            adjusted_rand_index(result.labels, partition.labels)
            for partition in result.partitions
        ]
        assert max(agreements) > 0.3

    def test_optimal_length_maximises_product(self, fitted_kgraph):
        scores = fitted_kgraph.length_scores_
        best = max(scores, key=lambda s: s.combined)
        chosen = next(s for s in scores if s.length == fitted_kgraph.optimal_length_)
        assert chosen.combined == pytest.approx(best.combined)

    def test_works_on_periodic_data(self, periodic_dataset):
        model = KGraph(n_clusters=3, n_lengths=3, random_state=0)
        labels = model.fit_predict(periodic_dataset.data)
        assert adjusted_rand_index(periodic_dataset.labels, labels) > 0.4
