"""Graph Clustering — step (c) of the k-Graph pipeline.

For each graph G_ℓ, two feature families are computed per time series: the
node-based features (how often the series crosses each node) and the
edge-based features (how often it traverses each edge).  The concatenated
feature matrix F_{D,ℓ} is clustered with k-Means, yielding the per-length
partition L_ℓ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster.kmeans import KMeans
from repro.exceptions import ValidationError
from repro.graph.structure import TimeSeriesGraph
from repro.utils.validation import check_positive_int


@dataclass
class GraphPartition:
    """The outcome of clustering one graph G_ℓ.

    Attributes
    ----------
    length:
        Subsequence length ℓ of the graph.
    labels:
        Partition L_ℓ of the time series.
    feature_matrix:
        The matrix F_{D,ℓ} that was clustered (n_series x (n_nodes + n_edges)).
    inertia:
        k-Means inertia of the partition (used as a diagnostic in the
        Under-the-hood frame).
    n_nodes, n_edges:
        Size of the graph the features came from.
    """

    length: int
    labels: np.ndarray
    feature_matrix: np.ndarray
    inertia: float
    n_nodes: int
    n_edges: int

    def summary(self) -> dict:
        """JSON-serialisable description for the Under-the-hood frame."""
        return {
            "length": self.length,
            "n_clusters": int(np.unique(self.labels).size),
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "n_features": int(self.feature_matrix.shape[1]),
            "inertia": float(self.inertia),
        }


def cluster_graph(
    graph: TimeSeriesGraph,
    n_clusters: int,
    *,
    feature_mode: str = "both",
    n_init: int = 5,
    random_state=None,
) -> GraphPartition:
    """Cluster the time series using the features induced by ``graph``.

    Parameters
    ----------
    graph:
        The transition graph G_ℓ built by the embedding step.
    n_clusters:
        Number of clusters ``k``.
    feature_mode:
        ``"both"`` (paper default), ``"nodes"`` or ``"edges"`` — the ablation
        benchmark compares these.
    n_init, random_state:
        Passed to the underlying k-Means.
    """
    n_clusters = check_positive_int(n_clusters, "n_clusters")
    if feature_mode not in {"both", "nodes", "edges"}:
        raise ValidationError(
            f"feature_mode must be 'both', 'nodes' or 'edges', got {feature_mode!r}"
        )
    if n_clusters > graph.n_series:
        raise ValidationError(
            f"n_clusters ({n_clusters}) cannot exceed the number of series ({graph.n_series})"
        )

    if feature_mode == "nodes":
        features = graph.node_feature_matrix()
    elif feature_mode == "edges":
        features = graph.edge_feature_matrix()
    else:
        features = graph.feature_matrix()

    if features.shape[1] == 0:
        raise ValidationError(
            f"graph for length {graph.length} produced an empty feature matrix"
        )

    kmeans = KMeans(
        n_clusters=n_clusters,
        n_init=n_init,
        random_state=random_state,
    )
    labels = kmeans.fit_predict(features)
    return GraphPartition(
        length=graph.length,
        labels=labels,
        feature_matrix=features,
        inertia=float(kmeans.inertia_),
        n_nodes=graph.n_nodes,
        n_edges=graph.n_edges,
    )
