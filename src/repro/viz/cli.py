"""``graphint`` command-line interface.

Sub-commands:

* ``graphint datasets``                       — list the dataset catalogue
* ``graphint cluster  --dataset NAME``        — run k-Graph and print a report
* ``graphint dashboard --dataset NAME -o F``  — write the static HTML dashboard
* ``graphint benchmark -o results.json``      — run the benchmark campaign
* ``graphint serve --port 8050``              — start the interactive server
* ``graphint quiz --dataset NAME``            — run the simulated interpretability test
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.benchmark.aggregate import summarize_by_method
from repro.benchmark.runner import BenchmarkRunner
from repro.benchmark.store import load_results, save_results
from repro.datasets.catalogue import default_catalogue
from repro.metrics.clustering import adjusted_rand_index
from repro.viz.dashboard import build_dashboard
from repro.viz.session import GraphintSession


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        default=None,
        help="execution backend for the parallel pipeline stages (default: serial)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker count; results are identical to the serial run for a fixed seed",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="graphint",
        description="Graphint: graph-based interpretable time series clustering tool",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list available datasets")

    cluster = subparsers.add_parser("cluster", help="run k-Graph on one dataset")
    cluster.add_argument("--dataset", default="cylinder_bell_funnel")
    cluster.add_argument("--clusters", type=int, default=None)
    cluster.add_argument("--lengths", type=int, default=4, help="number of subsequence lengths")
    cluster.add_argument("--seed", type=int, default=0)
    _add_parallel_arguments(cluster)

    dashboard = subparsers.add_parser("dashboard", help="build the static HTML dashboard")
    dashboard.add_argument("--dataset", default="cylinder_bell_funnel")
    dashboard.add_argument("--output", "-o", default="graphint_dashboard.html")
    dashboard.add_argument("--benchmark-file", default=None, help="JSON results to feed the Benchmark frame")
    dashboard.add_argument("--seed", type=int, default=0)
    _add_parallel_arguments(dashboard)

    benchmark = subparsers.add_parser("benchmark", help="run the benchmark campaign")
    benchmark.add_argument("--output", "-o", default="benchmark_results.json")
    benchmark.add_argument("--methods", nargs="*", default=None)
    benchmark.add_argument("--datasets", nargs="*", default=None)
    benchmark.add_argument("--runs", type=int, default=1)
    benchmark.add_argument("--seed", type=int, default=0)
    _add_parallel_arguments(benchmark)

    serve = subparsers.add_parser("serve", help="start the interactive dashboard server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8050)
    serve.add_argument("--benchmark-file", default=None)
    serve.add_argument("--seed", type=int, default=0)

    quiz = subparsers.add_parser("quiz", help="run the simulated interpretability test")
    quiz.add_argument("--dataset", default="cylinder_bell_funnel")
    quiz.add_argument("--users", type=int, default=5)
    quiz.add_argument("--seed", type=int, default=0)
    return parser


# --------------------------------------------------------------------------- #
def _cmd_datasets(_: argparse.Namespace) -> int:
    catalogue = default_catalogue()
    rows = catalogue.summary_rows()
    width = max(len(row["name"]) for row in rows)
    print(f"{'name':<{width}}  type                 series  length  classes")
    for row in rows:
        print(
            f"{row['name']:<{width}}  {row['type']:<20} {row['n_series']:>6}  "
            f"{row['length']:>6}  {row['n_classes']:>7}"
        )
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    dataset = default_catalogue().get(args.dataset).generate(random_state=args.seed)
    session = GraphintSession(
        dataset,
        n_clusters=args.clusters,
        n_lengths=args.lengths,
        random_state=args.seed,
        backend=args.backend,
        n_jobs=args.jobs,
    ).fit()
    summary = session.summary()
    print(f"dataset            : {dataset.name} ({dataset.n_series} x {dataset.length})")
    print(f"clusters (k)       : {session.n_clusters}")
    print(f"optimal length     : {summary['optimal_length']}")
    for method, ari in sorted(summary["ari"].items()):
        print(f"ARI {method:<14} : {ari:.3f}")
    return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    dataset = default_catalogue().get(args.dataset).generate(random_state=args.seed)
    session = GraphintSession(
        dataset, random_state=args.seed, backend=args.backend, n_jobs=args.jobs
    )
    benchmark_results = load_results(args.benchmark_file) if args.benchmark_file else None
    build_dashboard(session, benchmark_results=benchmark_results, output_path=args.output)
    print(f"dashboard written to {Path(args.output).resolve()}")
    return 0


def _cmd_benchmark(args: argparse.Namespace) -> int:
    runner = BenchmarkRunner(
        args.methods,
        n_runs=args.runs,
        random_state=args.seed,
        backend=args.backend,
        n_jobs=args.jobs,
    )

    def progress(method: str, dataset: str, result) -> None:
        status = "FAILED" if result.failed else f"ari={result.measures.get('ari', float('nan')):.3f}"
        print(f"[{dataset:<22}] {method:<16} {status}")

    results = runner.run(args.datasets, progress=progress)
    save_results(results, args.output)
    print(f"\nresults written to {Path(args.output).resolve()}")
    print("\nmean scores per method:")
    for method, values in sorted(summarize_by_method(results).items()):
        ari = values.get("ari", float("nan"))
        print(f"  {method:<16} ari={ari:.3f}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.viz.server import DashboardApplication, serve_dashboard

    benchmark_results = load_results(args.benchmark_file) if args.benchmark_file else None
    application = DashboardApplication(
        benchmark_results=benchmark_results, random_state=args.seed
    )
    print(f"serving Graphint on http://{args.host}:{args.port} (Ctrl+C to stop)")
    serve_dashboard(application, host=args.host, port=args.port)
    return 0


def _cmd_quiz(args: argparse.Namespace) -> int:
    dataset = default_catalogue().get(args.dataset).generate(random_state=args.seed)
    session = GraphintSession(dataset, random_state=args.seed).fit()
    session.build_quizzes(n_users=args.users)
    print(f"interpretability test on {dataset.name} ({args.users} simulated users)")
    for method, score in sorted(session.quiz_scores.items(), key=lambda item: -item[1]):
        print(f"  {method:<10} score = {score:.2f}")
    best = max(session.quiz_scores, key=session.quiz_scores.get)
    print(f"most interpretable representation: {best}")
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "cluster": _cmd_cluster,
    "dashboard": _cmd_dashboard,
    "benchmark": _cmd_benchmark,
    "serve": _cmd_serve,
    "quiz": _cmd_quiz,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (also exposed as the ``graphint`` console script)."""
    parser = _build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
