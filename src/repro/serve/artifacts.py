"""Versioned on-disk artifacts for fitted :class:`~repro.core.kgraph.KGraph` models.

An artifact is a directory with three files:

* ``manifest.json`` — schema version, constructor parameters, fit metadata,
  per-length scores/partition diagnostics, graphoids, timings, and free-form
  user metadata.  Everything a registry needs to *describe* the model
  without touching the heavy payloads.
* ``arrays.npz``    — every numeric array (labels, consensus matrix, node
  patterns, per-length partition labels and feature matrices), stored
  losslessly so ``load_model(save_model(m)).predict(X)`` is bit-identical
  to ``m.predict(X)``.
* ``graphs.json``   — the structural part of every per-length
  :class:`~repro.graph.structure.TimeSeriesGraph`: nodes with positions and
  visit counts, weighted edges, per-node/per-edge series multisets, and the
  node trajectory of every training series.

The format deliberately avoids pickle: it is inspectable, diffable, safe to
load from untrusted sources, and guarded by the shared schema-version check
(:mod:`repro.utils.schema`) so files written by newer releases fail with an
"upgrade the library" message instead of a parser crash.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro import __version__ as _library_version
from repro.core.graph_clustering import GraphPartition
from repro.core.interpretability import LengthScore
from repro.core.kgraph import KGraph, KGraphResult
from repro.exceptions import ArtifactError, NotFittedError, ValidationError
from repro.graph.graphoid import Graphoid
from repro.graph.structure import TimeSeriesGraph
from repro.utils.schema import check_schema_version

ARTIFACT_FORMAT = "kgraph-model"
#: v2 adds the optional ``pipeline`` manifest field: the stage pipeline's
#: config hash plus the per-stage content-addressed cache keys of the fit
#: that produced the model (``None`` for reference-monolith fits).  Readers
#: accept v1 artifacts unchanged — the field is simply absent.
ARTIFACT_SCHEMA_VERSION = 2

MANIFEST_FILE = "manifest.json"
ARRAYS_FILE = "arrays.npz"
GRAPHS_FILE = "graphs.json"


# --------------------------------------------------------------------------- #
# serialisation helpers
# --------------------------------------------------------------------------- #
def _graphoid_to_payload(graphoid: Graphoid) -> Dict[str, object]:
    return {
        "cluster": int(graphoid.cluster),
        "kind": graphoid.kind,
        "threshold": float(graphoid.threshold),
        "nodes": [int(node) for node in graphoid.nodes],
        "edges": [[int(source), int(target)] for source, target in graphoid.edges],
        "node_scores": {
            str(node): float(score) for node, score in graphoid.node_scores.items()
        },
        "edge_scores": [
            [int(source), int(target), float(score)]
            for (source, target), score in graphoid.edge_scores.items()
        ],
    }


def _graphoid_from_payload(payload: Dict[str, object]) -> Graphoid:
    return Graphoid(
        cluster=int(payload["cluster"]),
        nodes=[int(node) for node in payload["nodes"]],
        edges=[(int(source), int(target)) for source, target in payload["edges"]],
        node_scores={
            int(node): float(score) for node, score in payload["node_scores"].items()
        },
        edge_scores={
            (int(source), int(target)): float(score)
            for source, target, score in payload["edge_scores"]
        },
        kind=str(payload["kind"]),
        threshold=float(payload["threshold"]),
    )


def _model_params(model: KGraph) -> Dict[str, object]:
    """Constructor parameters, with non-serialisable seeds nulled out."""
    random_state = model.random_state
    if not (random_state is None or isinstance(random_state, (int, np.integer))):
        # A live Generator cannot be represented faithfully; the loaded model
        # is only used for prediction, which draws no randomness.
        random_state = None
    return {
        "n_clusters": int(model.n_clusters),
        "n_lengths": int(model.n_lengths),
        "lengths": list(model.lengths) if model.lengths is not None else None,
        "stride": int(model.stride),
        "n_sectors": int(model.n_sectors),
        "feature_mode": model.feature_mode,
        "lambda_threshold": float(model.lambda_threshold),
        "gamma_threshold": float(model.gamma_threshold),
        "random_state": None if random_state is None else int(random_state),
    }


# --------------------------------------------------------------------------- #
# public API
# --------------------------------------------------------------------------- #
def save_model(
    model: KGraph,
    path: Union[str, Path],
    *,
    dataset: Optional[str] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> Path:
    """Persist a fitted model as a versioned artifact directory.

    Parameters
    ----------
    model:
        A fitted :class:`KGraph`.
    path:
        Target directory (created if needed; existing artifact files are
        overwritten, other existing content is rejected).
    dataset:
        Optional dataset name recorded in the manifest; registries use it to
        shelve the artifact.
    metadata:
        Free-form JSON-serialisable annotations stored under
        ``manifest["metadata"]``.
    """
    if model.result_ is None:
        raise NotFittedError(
            "cannot save an unfitted KGraph; call fit(data) before save_model()"
        )
    result = model.result_
    path = Path(path)
    if path.exists() and not path.is_dir():
        raise ArtifactError(f"artifact path {path} exists and is not a directory")
    if path.is_dir():
        expected = {MANIFEST_FILE, MANIFEST_FILE + ".tmp", ARRAYS_FILE, GRAPHS_FILE}
        stray = [p.name for p in path.iterdir() if p.name not in expected]
        if stray:
            raise ArtifactError(
                f"refusing to write artifact into non-empty directory {path} "
                f"(unexpected entries: {sorted(stray)[:5]})"
            )
    path.mkdir(parents=True, exist_ok=True)

    arrays: Dict[str, np.ndarray] = {
        "labels": result.labels,
        "consensus_matrix": result.consensus_matrix,
    }
    graph_payloads: List[Dict[str, object]] = []
    for length in sorted(result.graphs):
        graph = result.graphs[length]
        graph_payloads.append(graph.to_payload())
        nodes = graph.nodes()
        arrays[f"graph_{length}_patterns"] = (
            np.vstack([graph.node_pattern(node) for node in nodes])
            if nodes
            else np.empty((0, length))
        )
    partition_rows: List[Dict[str, object]] = []
    for partition in result.partitions:
        arrays[f"partition_{partition.length}_labels"] = partition.labels
        arrays[f"partition_{partition.length}_features"] = partition.feature_matrix
        partition_rows.append(
            {
                "length": int(partition.length),
                "inertia": float(partition.inertia),
                "n_nodes": int(partition.n_nodes),
                "n_edges": int(partition.n_edges),
            }
        )

    manifest: Dict[str, object] = {
        "format": ARTIFACT_FORMAT,
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "library_version": _library_version,
        "created_unix": time.time(),
        "dataset": dataset,
        "params": _model_params(model),
        "fitted": {
            "n_series": int(result.labels.shape[0]),
            "n_clusters": int(result.n_clusters),
            "optimal_length": int(result.optimal_length),
            "lengths": [int(length) for length in sorted(result.graphs)],
        },
        "length_scores": [
            {
                "length": int(score.length),
                "consistency": float(score.consistency),
                "interpretability": float(score.interpretability),
            }
            for score in result.length_scores
        ],
        "partitions": partition_rows,
        "graphoids": {
            "lambda": [
                _graphoid_to_payload(g) for _, g in sorted(result.lambda_graphoids.items())
            ],
            "gamma": [
                _graphoid_to_payload(g) for _, g in sorted(result.gamma_graphoids.items())
            ],
        },
        "timings": {name: float(value) for name, value in result.timings.items()},
        # Schema v2: the provenance ledger of the pipeline-driven fit — which
        # stages ran vs replayed, their content-addressed keys, and the
        # config hash — so registries can tell two models apart (or dedup
        # them) without loading the payloads.
        "pipeline": (
            model.pipeline_report_.as_dict()
            if model.pipeline_report_ is not None
            else None
        ),
        "metadata": dict(metadata) if metadata else {},
    }

    # The manifest is written LAST, atomically (tmp + rename): it is the
    # artifact's commit marker.  A crash mid-save leaves a directory without
    # manifest.json, which the registry ignores, instead of a
    # listed-but-unloadable (or half-written) model.  For the same reason an
    # overwrite un-commits the old artifact first — a stale manifest must
    # never describe half-replaced payloads.
    manifest_path = path / MANIFEST_FILE
    if manifest_path.exists():
        manifest_path.unlink()
    with (path / ARRAYS_FILE).open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    with (path / GRAPHS_FILE).open("w", encoding="utf-8") as handle:
        json.dump({"graphs": graph_payloads}, handle, sort_keys=True)
    manifest_tmp = path / (MANIFEST_FILE + ".tmp")
    with manifest_tmp.open("w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    os.replace(manifest_tmp, manifest_path)
    return path


def read_manifest(path: Union[str, Path]) -> Dict[str, object]:
    """Load and validate the manifest of an artifact directory."""
    path = Path(path)
    manifest_path = path / MANIFEST_FILE
    if not manifest_path.exists():
        raise ArtifactError(f"{path} is not a model artifact: missing {MANIFEST_FILE}")
    try:
        with manifest_path.open("r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"could not read manifest of {path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise ArtifactError(f"manifest of {path} must be a JSON object")
    if manifest.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(
            f"{path} holds format {manifest.get('format')!r}, expected "
            f"{ARTIFACT_FORMAT!r}"
        )
    try:
        check_schema_version(
            manifest.get("schema_version"),
            supported=ARTIFACT_SCHEMA_VERSION,
            context=f"model artifact {path}",
        )
    except ValidationError as exc:
        # The artifact layer's error contract is ArtifactError throughout.
        raise ArtifactError(str(exc)) from exc
    return manifest


def load_model(path: Union[str, Path]) -> KGraph:
    """Reconstruct a fitted :class:`KGraph` from an artifact directory.

    The loaded estimator carries the full :class:`KGraphResult` (graphs,
    partitions, consensus matrix, graphoids, scores), so every downstream
    consumer — ``predict``, the Graphint frames, graphoid recomputation —
    behaves exactly as it does on the in-memory original.
    """
    path = Path(path)
    manifest = read_manifest(path)
    for required in (ARRAYS_FILE, GRAPHS_FILE):
        if not (path / required).exists():
            raise ArtifactError(f"artifact {path} is incomplete: missing {required}")

    try:
        with np.load(path / ARRAYS_FILE) as payload:
            arrays = {key: payload[key] for key in payload.files}
    except (OSError, ValueError) as exc:
        raise ArtifactError(f"could not read arrays of {path}: {exc}") from exc
    try:
        with (path / GRAPHS_FILE).open("r", encoding="utf-8") as handle:
            graph_payloads = json.load(handle)["graphs"]
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        raise ArtifactError(f"could not read graphs of {path}: {exc}") from exc

    for required in ("params", "fitted", "partitions", "length_scores"):
        if required not in manifest:
            raise ArtifactError(
                f"artifact {path} manifest is missing required field {required!r}"
            )
    for required in ("labels", "consensus_matrix"):
        if required not in arrays:
            raise ArtifactError(
                f"artifact {path} arrays are missing entry {required!r}"
            )
    params = manifest["params"]
    try:
        model = KGraph(
            params["n_clusters"],
            n_lengths=params["n_lengths"],
            lengths=params["lengths"],
            stride=params["stride"],
            n_sectors=params["n_sectors"],
            feature_mode=params["feature_mode"],
            lambda_threshold=params["lambda_threshold"],
            gamma_threshold=params["gamma_threshold"],
            random_state=params["random_state"],
        )
    except KeyError as exc:
        raise ArtifactError(
            f"artifact {path} manifest params are missing field {exc}"
        ) from exc

    graphs: Dict[int, TimeSeriesGraph] = {}
    for payload in graph_payloads:
        length = int(payload["length"])
        key = f"graph_{length}_patterns"
        if key not in arrays:
            raise ArtifactError(f"artifact {path} misses pattern matrix {key!r}")
        try:
            graphs[length] = TimeSeriesGraph.from_payload(payload, arrays[key])
        except ValidationError as exc:
            raise ArtifactError(f"artifact {path} holds a corrupt graph: {exc}") from exc

    # Nested-field corruption (a row or graphoid missing a key) must surface
    # as ArtifactError, like every other failure mode of this module.
    try:
        partitions: List[GraphPartition] = []
        for row in manifest["partitions"]:
            length = int(row["length"])
            labels_key = f"partition_{length}_labels"
            features_key = f"partition_{length}_features"
            if labels_key not in arrays or features_key not in arrays:
                raise ArtifactError(
                    f"artifact {path} misses partition payloads for length {length}"
                )
            partitions.append(
                GraphPartition(
                    length=length,
                    labels=arrays[labels_key],
                    feature_matrix=arrays[features_key],
                    inertia=float(row["inertia"]),
                    n_nodes=int(row["n_nodes"]),
                    n_edges=int(row["n_edges"]),
                )
            )

        graphoids = manifest.get("graphoids", {})
        lambda_graphoids = {
            int(p["cluster"]): _graphoid_from_payload(p) for p in graphoids.get("lambda", [])
        }
        gamma_graphoids = {
            int(p["cluster"]): _graphoid_from_payload(p) for p in graphoids.get("gamma", [])
        }

        model.result_ = KGraphResult(
            labels=arrays["labels"],
            graphs=graphs,
            partitions=partitions,
            consensus_matrix=arrays["consensus_matrix"],
            length_scores=[
                LengthScore(
                    length=int(row["length"]),
                    consistency=float(row["consistency"]),
                    interpretability=float(row["interpretability"]),
                )
                for row in manifest["length_scores"]
            ],
            optimal_length=int(manifest["fitted"]["optimal_length"]),
            lambda_graphoids=lambda_graphoids,
            gamma_graphoids=gamma_graphoids,
            timings={str(k): float(v) for k, v in manifest.get("timings", {}).items()},
        )
    except KeyError as exc:
        raise ArtifactError(
            f"artifact {path} manifest is missing field {exc}"
        ) from exc
    model.labels_ = model.result_.labels
    return model
