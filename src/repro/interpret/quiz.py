"""Quiz construction for the Interpretability test frame.

A quiz is built for one dataset and one clustering method: five series are
drawn at random and the participant must recover the cluster the method
assigned them to, given only the per-cluster representations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.interpret.representations import ClusterRepresentation
from repro.utils.containers import TimeSeriesDataset
from repro.utils.validation import check_labels, check_positive_int, check_random_state


@dataclass
class QuizQuestion:
    """One question: which cluster was this series assigned to?"""

    question_id: int
    series_index: int
    series: np.ndarray
    correct_cluster: int

    def is_correct(self, answer: int) -> bool:
        """Whether ``answer`` matches the method's assignment."""
        return int(answer) == int(self.correct_cluster)


@dataclass
class Quiz:
    """A full quiz: questions plus the representations shown to the participant."""

    dataset_name: str
    method: str
    questions: List[QuizQuestion]
    representations: Dict[int, ClusterRepresentation]
    answers: Dict[int, int] = field(default_factory=dict)

    @property
    def n_questions(self) -> int:
        """Number of questions (five in the demo)."""
        return len(self.questions)

    @property
    def clusters(self) -> List[int]:
        """Clusters the participant can answer with."""
        return sorted(self.representations)

    def answer(self, question_id: int, cluster: int) -> None:
        """Record an answer for ``question_id``."""
        if question_id not in {q.question_id for q in self.questions}:
            raise ValidationError(f"unknown question id {question_id}")
        if cluster not in self.representations:
            raise ValidationError(
                f"cluster {cluster} is not a valid answer; options: {self.clusters}"
            )
        self.answers[int(question_id)] = int(cluster)

    def score(self) -> float:
        """Fraction of answered questions that are correct (0 when none answered)."""
        if not self.answers:
            return 0.0
        correct = 0
        for question in self.questions:
            answer = self.answers.get(question.question_id)
            if answer is not None and question.is_correct(answer):
                correct += 1
        return correct / self.n_questions

    def is_complete(self) -> bool:
        """Whether every question has been answered."""
        return len(self.answers) == self.n_questions


def build_quiz(
    dataset: TimeSeriesDataset,
    method: str,
    method_labels,
    representations: Dict[int, ClusterRepresentation],
    *,
    n_questions: int = 5,
    random_state=None,
    exclude_indices: Optional[Sequence[int]] = None,
) -> Quiz:
    """Draw ``n_questions`` random series and build the quiz.

    ``method_labels`` are the assignments produced by ``method`` on the
    dataset (the "correct" answers of the quiz are the method's own labels,
    not the ground truth — the quiz measures how well the representation
    explains the method's behaviour).
    """
    n_questions = check_positive_int(n_questions, "n_questions")
    labels = check_labels(method_labels, n_samples=dataset.n_series)
    rng = check_random_state(random_state)
    if not representations:
        raise ValidationError("representations must not be empty")
    missing = set(np.unique(labels).tolist()) - set(representations)
    if missing:
        raise ValidationError(f"representations missing for clusters {sorted(missing)}")

    candidates = np.arange(dataset.n_series)
    if exclude_indices is not None:
        excluded = set(int(i) for i in exclude_indices)
        candidates = np.array([i for i in candidates if i not in excluded])
    if candidates.size == 0:
        raise ValidationError("no candidate series left to draw questions from")
    n_questions = min(n_questions, candidates.size)
    chosen = rng.choice(candidates, size=n_questions, replace=False)

    questions = [
        QuizQuestion(
            question_id=i,
            series_index=int(index),
            series=dataset.data[int(index)].copy(),
            correct_cluster=int(labels[int(index)]),
        )
        for i, index in enumerate(chosen)
    ]
    return Quiz(
        dataset_name=dataset.name,
        method=method,
        questions=questions,
        representations=dict(representations),
    )
