"""Unit tests for representativity, exclusivity and graphoid extraction."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graph.graphoid import (
    edge_exclusivity,
    edge_representativity,
    extract_gamma_graphoid,
    extract_graphoid,
    extract_lambda_graphoid,
    interpretability_factor,
    node_exclusivity,
    node_representativity,
)
from repro.graph.structure import TimeSeriesGraph


@pytest.fixture()
def labelled_graph():
    """4 series in 2 clusters; node 0 exclusive to cluster 0, node 2 to cluster 1,
    node 1 shared by everyone."""
    graph = TimeSeriesGraph(length=4, n_series=4)
    for node in range(3):
        graph.add_node(node, (float(node), 0.0), np.zeros(4))
    labels = np.array([0, 0, 1, 1])
    # Cluster 0 members visit nodes 0 then 1.
    for series in (0, 1):
        graph.record_visit(0, series)
        graph.record_visit(1, series)
        graph.record_transition(0, 1, series)
    # Cluster 1 members visit nodes 1 then 2.
    for series in (2, 3):
        graph.record_visit(1, series)
        graph.record_visit(2, series)
        graph.record_transition(1, 2, series)
    return graph, labels


class TestNodeScores:
    def test_representativity_values(self, labelled_graph):
        graph, labels = labelled_graph
        representativity = node_representativity(graph, labels)
        assert representativity[0][0] == pytest.approx(1.0)  # all of cluster 0 cross node 0
        assert representativity[0][2] == pytest.approx(0.0)
        assert representativity[0][1] == pytest.approx(1.0)
        assert representativity[1][2] == pytest.approx(1.0)

    def test_exclusivity_values(self, labelled_graph):
        graph, labels = labelled_graph
        exclusivity = node_exclusivity(graph, labels)
        assert exclusivity[0][0] == pytest.approx(1.0)  # only cluster 0 crosses node 0
        assert exclusivity[1][0] == pytest.approx(0.0)
        assert exclusivity[0][1] == pytest.approx(0.5)  # node 1 shared half/half
        assert exclusivity[1][1] == pytest.approx(0.5)

    def test_scores_are_probabilities(self, fitted_kgraph):
        graph = fitted_kgraph.result_.optimal_graph
        labels = fitted_kgraph.result_.labels
        for scores in (node_representativity(graph, labels), node_exclusivity(graph, labels)):
            for cluster_values in scores.values():
                values = np.array(list(cluster_values.values()))
                assert np.all(values >= 0.0) and np.all(values <= 1.0)

    def test_exclusivity_sums_to_one_across_clusters(self, fitted_kgraph):
        graph = fitted_kgraph.result_.optimal_graph
        labels = fitted_kgraph.result_.labels
        exclusivity = node_exclusivity(graph, labels)
        clusters = list(exclusivity)
        for node in graph.nodes():
            total = sum(exclusivity[c][node] for c in clusters)
            assert total == pytest.approx(1.0, abs=1e-9) or total == pytest.approx(0.0)

    def test_label_length_mismatch(self, labelled_graph):
        graph, _ = labelled_graph
        with pytest.raises(ValidationError):
            node_representativity(graph, [0, 1])


class TestEdgeScores:
    def test_edge_exclusivity(self, labelled_graph):
        graph, labels = labelled_graph
        exclusivity = edge_exclusivity(graph, labels)
        assert exclusivity[0][(0, 1)] == pytest.approx(1.0)
        assert exclusivity[1][(1, 2)] == pytest.approx(1.0)

    def test_edge_representativity(self, labelled_graph):
        graph, labels = labelled_graph
        representativity = edge_representativity(graph, labels)
        assert representativity[0][(0, 1)] == pytest.approx(1.0)
        assert representativity[0][(1, 2)] == pytest.approx(0.0)


class TestGraphoidExtraction:
    def test_plain_graphoid_contains_everything_touched(self, labelled_graph):
        graph, labels = labelled_graph
        graphoid = extract_graphoid(graph, labels, 0)
        assert set(graphoid.nodes) == {0, 1}
        assert set(graphoid.edges) == {(0, 1)}
        assert not graphoid.is_empty()

    def test_lambda_graphoid_thresholding(self, labelled_graph):
        graph, labels = labelled_graph
        strict = extract_lambda_graphoid(graph, labels, 0, 1.0)
        assert set(strict.nodes) == {0, 1}
        assert strict.kind == "lambda"

    def test_gamma_graphoid_excludes_shared_nodes(self, labelled_graph):
        graph, labels = labelled_graph
        exclusive = extract_gamma_graphoid(graph, labels, 0, 0.9)
        assert set(exclusive.nodes) == {0}
        relaxed = extract_gamma_graphoid(graph, labels, 0, 0.5)
        assert set(relaxed.nodes) == {0, 1}

    def test_higher_threshold_never_adds_elements(self, fitted_kgraph):
        labels = fitted_kgraph.result_.labels
        graph = fitted_kgraph.result_.optimal_graph
        cluster = int(labels[0])
        sizes = []
        for threshold in (0.2, 0.5, 0.8):
            graphoid = extract_gamma_graphoid(graph, labels, cluster, threshold)
            sizes.append(graphoid.n_nodes + graphoid.n_edges)
        assert sizes[0] >= sizes[1] >= sizes[2]

    def test_unknown_cluster_rejected(self, labelled_graph):
        graph, labels = labelled_graph
        with pytest.raises(ValidationError):
            extract_gamma_graphoid(graph, labels, 7, 0.5)
        with pytest.raises(ValidationError):
            extract_graphoid(graph, labels, 7)

    def test_invalid_threshold(self, labelled_graph):
        graph, labels = labelled_graph
        with pytest.raises(ValidationError):
            extract_lambda_graphoid(graph, labels, 0, 1.5)

    def test_summary_lists_top_nodes(self, labelled_graph):
        graph, labels = labelled_graph
        graphoid = extract_gamma_graphoid(graph, labels, 0, 0.4)
        summary = graphoid.summary()
        assert summary["cluster"] == 0
        assert summary["n_nodes"] == graphoid.n_nodes
        assert len(summary["top_nodes"]) <= 5


class TestInterpretabilityFactor:
    def test_perfectly_separated_graph_scores_one(self, labelled_graph):
        graph, labels = labelled_graph
        # Each cluster owns one fully exclusive node (0 and 2), so the average
        # of the per-cluster maxima is 1.
        assert interpretability_factor(graph, labels) == pytest.approx(1.0)

    def test_single_cluster_scores_one(self, labelled_graph):
        graph, _ = labelled_graph
        assert interpretability_factor(graph, np.zeros(4, dtype=int)) == pytest.approx(1.0)

    def test_bounded(self, fitted_kgraph):
        graph = fitted_kgraph.result_.optimal_graph
        labels = fitted_kgraph.result_.labels
        value = interpretability_factor(graph, labels)
        assert 0.0 <= value <= 1.0
