"""E13 — Hot-path vectorization: vectorized vs retained reference implementations.

PR 3 replaced every per-subsequence / per-pair Python loop on the k-Graph
hot paths with vectorized NumPy: bulk graph construction
(``TimeSeriesGraph.add_visits`` / ``add_transitions`` fed by
``GraphEmbedding``), an anti-diagonal banded DTW, blockwise/batched
``pairwise_distances``, ``np.argpartition``-based ``knn_affinity``, a
one-hot-GEMM consensus matrix and a whole-batch ``predict_with_state``.
Each vectorized path retains its original implementation as a
``*_reference`` twin; this experiment

* times each (reference, vectorized) pair on the benchmark config,
* asserts the outputs are **bit-identical** (``np.array_equal`` / payload
  equality, never approx),
* asserts the acceptance floors — >= 5x on embedding graph construction
  and >= 10x on DTW / pairwise distances,
* records the pickled bytes per job with and without the zero-copy
  shared-memory dataset plan of :class:`repro.parallel.SharedMemoryBackend`,

and persists everything to ``benchmarks/results/hotpaths.json``.  That file
is the committed baseline the CI perf-smoke job compares fresh runs
against (see ``benchmarks/compare_hotpaths.py``): speedups are
machine-normalized (reference and vectorized run on the same box), so the
comparison is robust across runner generations.
"""

from __future__ import annotations

import json
import pickle
import time
from typing import Callable, Dict, List

import numpy as np
import pytest

from bench_utils import RESULTS_DIR, format_table, full_mode, report
from repro.core.consensus import (
    build_consensus_matrix,
    build_consensus_matrix_reference,
)
from repro.core.kgraph import (
    KGraph,
    _LengthFitJob,
    predict_with_state,
    predict_with_state_reference,
)
from repro.datasets.synthetic import make_cylinder_bell_funnel
from repro.graph.embedding import GraphEmbedding
from repro.graph.structure import TimeSeriesGraph
from repro.linalg.kernels import knn_affinity, knn_affinity_reference
from repro.metrics.distances import (
    dtw_distance,
    dtw_distance_reference,
    pairwise_distances,
    pairwise_distances_reference,
)
from repro.parallel import SharedArrayPlan, substitute_shared_arrays
from repro.pipeline import MemoryStageCache
from repro.utils.normalization import znormalize_dataset
from repro.utils.windows import subsequences_of_dataset

SCHEMA_VERSION = 1

if full_mode():
    EMBED_N_SERIES, EMBED_SERIES_LENGTH, EMBED_LENGTH = 64, 256, 32
    DTW_SINGLE_LENGTH = 512
    DTW_PAIRWISE_SHAPE = (24, 128)
    PAIRWISE_SHAPE = (160, 192)
    KNN_SHAPE, KNN_NEIGHBORS = (400, 16), 10
    CONSENSUS_PARTITIONS, CONSENSUS_SAMPLES = 16, 800
    PREDICT_BATCH = 128
    PIPELINE_N_SERIES, PIPELINE_SERIES_LENGTH, PIPELINE_N_LENGTHS = 48, 160, 4
else:
    EMBED_N_SERIES, EMBED_SERIES_LENGTH, EMBED_LENGTH = 32, 160, 24
    DTW_SINGLE_LENGTH = 192
    DTW_PAIRWISE_SHAPE = (16, 96)
    PAIRWISE_SHAPE = (96, 160)
    KNN_SHAPE, KNN_NEIGHBORS = (200, 16), 10
    CONSENSUS_PARTITIONS, CONSENSUS_SAMPLES = 12, 500
    PREDICT_BATCH = 64
    PIPELINE_N_SERIES, PIPELINE_SERIES_LENGTH, PIPELINE_N_LENGTHS = 24, 96, 3

# Acceptance floors (ISSUE 3): >= 5x on embedding graph construction and
# >= 10x on DTW/pairwise; (ISSUE 4) >= 5x for a fully checkpoint-replayed
# pipeline re-fit over a cold fit.  The remaining hot paths are guarded by
# the looser committed-baseline comparison of the CI perf-smoke job (their
# vectorized sides finish in single-digit milliseconds, where timing jitter
# on shared runners makes a hard double-digit floor flaky).
SPEEDUP_FLOORS = {
    "embedding_build": 5.0,
    "dtw_single": 10.0,
    "dtw_pairwise": 10.0,
    "pipeline_cached_refit": 5.0,
}


def _best_seconds(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _entry(
    hot_path: str,
    reference: Callable[[], object],
    vectorized: Callable[[], object],
    equal: Callable[[object, object], bool],
    *,
    ref_repeats: int = 2,
    vec_repeats: int = 5,
) -> Dict[str, object]:
    assert equal(reference(), vectorized()), f"{hot_path}: outputs differ"
    reference_seconds = _best_seconds(reference, ref_repeats)
    vectorized_seconds = _best_seconds(vectorized, vec_repeats)
    return {
        "hot_path": hot_path,
        "reference_seconds": reference_seconds,
        "vectorized_seconds": vectorized_seconds,
        "speedup": reference_seconds / max(vectorized_seconds, 1e-12),
    }


# --------------------------------------------------------------------- #
# workloads
# --------------------------------------------------------------------- #
def _embedding_entry() -> Dict[str, object]:
    """Time graph construction (assembly) on precomputed assignments.

    The PCA projection and radial scan are identical in both paths; the
    construction stage — pattern means, visit and transition recording —
    is what the vectorization targets, so it is what gets timed.
    """
    dataset = make_cylinder_bell_funnel(
        n_series=EMBED_N_SERIES, length=EMBED_SERIES_LENGTH, noise=0.2, random_state=0
    )
    data = dataset.data
    embedding = GraphEmbedding(EMBED_LENGTH, random_state=0)
    embedding.fit(data)  # untimed: fills projection_ / node_positions_

    subsequences, series_index, _ = subsequences_of_dataset(data, EMBED_LENGTH, 1)
    subsequences = znormalize_dataset(subsequences)
    projection = embedding.projection_
    node_positions = embedding.node_positions_
    distances = (
        np.sum(projection**2, axis=1)[:, None]
        - 2.0 * projection @ node_positions.T
        + np.sum(node_positions**2, axis=1)[None, :]
    )
    assignments = np.argmin(distances, axis=1)
    used_nodes = np.unique(assignments)
    assignments = np.searchsorted(used_nodes, assignments)
    node_positions = node_positions[used_nodes]

    def build(vectorized: bool) -> TimeSeriesGraph:
        graph = TimeSeriesGraph(length=EMBED_LENGTH, n_series=data.shape[0])
        assemble = (
            embedding._assemble_vectorized if vectorized else embedding._assemble_reference
        )
        assemble(graph, subsequences, assignments, series_index, node_positions)
        return graph

    entry = _entry(
        "embedding_build",
        lambda: build(False),
        lambda: build(True),
        lambda ref, vec: ref.to_payload() == vec.to_payload(),
    )
    entry["n_subsequences"] = int(subsequences.shape[0])
    return entry


def _dtw_single_entry() -> Dict[str, object]:
    rng = np.random.default_rng(1)
    a = rng.normal(size=DTW_SINGLE_LENGTH).cumsum()
    b = rng.normal(size=DTW_SINGLE_LENGTH).cumsum()
    entry = _entry(
        "dtw_single",
        lambda: dtw_distance_reference(a, b),
        lambda: dtw_distance(a, b),
        lambda ref, vec: ref == vec,
    )
    entry["length"] = DTW_SINGLE_LENGTH
    return entry


def _dtw_pairwise_entry() -> Dict[str, object]:
    rng = np.random.default_rng(2)
    data = rng.normal(size=DTW_PAIRWISE_SHAPE).cumsum(axis=1)
    entry = _entry(
        "dtw_pairwise",
        lambda: pairwise_distances_reference(data, metric="dtw"),
        lambda: pairwise_distances(data, metric="dtw"),
        np.array_equal,
        ref_repeats=1,
    )
    entry["shape"] = list(DTW_PAIRWISE_SHAPE)
    return entry


def _pairwise_entry(metric: str) -> Dict[str, object]:
    rng = np.random.default_rng(3)
    data = rng.normal(size=PAIRWISE_SHAPE).cumsum(axis=1)
    # The euclidean default is the (even faster) gram-matrix GEMM path;
    # exact=True selects the direct-difference kernel, the one that is
    # bit-identical to the reference loop and therefore the one timed here.
    kwargs = {"exact": True} if metric == "euclidean" else {}
    entry = _entry(
        f"{metric}_pairwise",
        lambda: pairwise_distances_reference(data, metric=metric),
        lambda: pairwise_distances(data, metric=metric, **kwargs),
        np.array_equal,
    )
    entry["shape"] = list(PAIRWISE_SHAPE)
    return entry


def _knn_entry() -> Dict[str, object]:
    rng = np.random.default_rng(4)
    data = rng.normal(size=KNN_SHAPE)
    entry = _entry(
        "knn_affinity",
        lambda: knn_affinity_reference(data, n_neighbors=KNN_NEIGHBORS),
        lambda: knn_affinity(data, n_neighbors=KNN_NEIGHBORS),
        np.array_equal,
    )
    entry["shape"] = list(KNN_SHAPE)
    return entry


def _consensus_entry() -> Dict[str, object]:
    rng = np.random.default_rng(5)
    partitions = [
        rng.integers(0, 5, size=CONSENSUS_SAMPLES) for _ in range(CONSENSUS_PARTITIONS)
    ]
    entry = _entry(
        "consensus_matrix",
        lambda: build_consensus_matrix_reference(partitions),
        lambda: build_consensus_matrix(partitions),
        np.array_equal,
    )
    entry["n_partitions"] = CONSENSUS_PARTITIONS
    entry["n_samples"] = CONSENSUS_SAMPLES
    return entry


def _predict_entry() -> Dict[str, object]:
    train = make_cylinder_bell_funnel(n_series=24, length=96, noise=0.2, random_state=6)
    model = KGraph(n_clusters=3, n_lengths=2, random_state=0)
    model.fit(train.data)
    state = model.prediction_state()
    fresh = make_cylinder_bell_funnel(
        n_series=PREDICT_BATCH, length=96, noise=0.2, random_state=7
    )
    entry = _entry(
        "batched_predict",
        lambda: predict_with_state_reference(state, fresh.data),
        lambda: predict_with_state(state, fresh.data),
        np.array_equal,
    )
    entry["batch_size"] = PREDICT_BATCH
    return entry


def _pipeline_entry() -> Dict[str, object]:
    """Cold pipeline fit vs a fully checkpoint-replayed re-fit (resume path).

    The "reference" side is a cold ``KGraph.fit`` through the stage
    pipeline; the "vectorized" side re-fits with identical parameters
    against a warm :class:`~repro.pipeline.MemoryStageCache`, so every
    stage replays its checkpoint.  Labels must be bit-identical either way
    — the speedup is what ``--resume`` and the benchmark parameter grids
    buy over refitting from scratch.
    """
    dataset = make_cylinder_bell_funnel(
        n_series=PIPELINE_N_SERIES,
        length=PIPELINE_SERIES_LENGTH,
        noise=0.2,
        random_state=9,
    )
    params = dict(n_clusters=3, n_lengths=PIPELINE_N_LENGTHS, random_state=0)

    def cold() -> np.ndarray:
        return KGraph(**params).fit(dataset.data).labels_

    cache = MemoryStageCache()
    KGraph(**params, stage_cache=cache).fit(dataset.data)  # untimed warm-up

    def warm() -> np.ndarray:
        return KGraph(**params, stage_cache=cache).fit(dataset.data).labels_

    entry = _entry(
        "pipeline_cached_refit", cold, warm, np.array_equal, ref_repeats=1
    )
    entry["n_series"] = int(dataset.n_series)
    entry["series_length"] = int(dataset.length)
    entry["n_lengths"] = int(params["n_lengths"])
    return entry


def _shared_memory_stats() -> Dict[str, object]:
    """Pickled bytes per per-length fit job, with and without sharing."""
    dataset = make_cylinder_bell_funnel(
        n_series=EMBED_N_SERIES, length=EMBED_SERIES_LENGTH, noise=0.2, random_state=8
    )
    jobs = [
        _LengthFitJob(
            length=length,
            array=dataset.data,
            stride=1,
            n_sectors=24,
            feature_mode="both",
            n_clusters=3,
            rng=np.random.default_rng(0),
        )
        for length in (12, 24, 48, 64)
    ]
    plain_bytes = sum(len(pickle.dumps(job)) for job in jobs)
    with SharedArrayPlan() as plan:
        shared_bytes = sum(
            len(pickle.dumps(substitute_shared_arrays(job, plan, 0))) for job in jobs
        )
        n_segments = plan.n_segments
    return {
        "n_jobs": len(jobs),
        "dataset_bytes": int(dataset.data.nbytes),
        "plain_pickled_bytes": int(plain_bytes),
        "shared_pickled_bytes": int(shared_bytes),
        "bytes_ratio": plain_bytes / max(1, shared_bytes),
        "segments_written": int(n_segments),
    }


def _run_hotpaths_experiment() -> Dict[str, object]:
    entries: List[Dict[str, object]] = [
        _embedding_entry(),
        _dtw_single_entry(),
        _dtw_pairwise_entry(),
        _pairwise_entry("euclidean"),
        _pairwise_entry("zeuclidean"),
        _pairwise_entry("sbd"),
        _knn_entry(),
        _consensus_entry(),
        _predict_entry(),
        _pipeline_entry(),
    ]
    for entry in entries:
        floor = SPEEDUP_FLOORS.get(entry["hot_path"])
        if floor is not None:
            assert entry["speedup"] >= floor, (
                f"{entry['hot_path']}: speedup {entry['speedup']:.1f}x below the "
                f"{floor:.0f}x acceptance floor"
            )
    return {
        "schema_version": SCHEMA_VERSION,
        "experiment": "E13-hotpaths",
        "full_mode": full_mode(),
        "entries": entries,
        "shared_memory": _shared_memory_stats(),
    }


@pytest.mark.benchmark(group="E13-hotpaths")
def test_bench_hotpaths(benchmark):
    payload = benchmark.pedantic(_run_hotpaths_experiment, rounds=1, iterations=1)

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "hotpaths.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    rows = [
        {
            "hot path": entry["hot_path"],
            "reference_s": entry["reference_seconds"],
            "vectorized_s": entry["vectorized_seconds"],
            "speedup": entry["speedup"],
        }
        for entry in payload["entries"]
    ]
    shared = payload["shared_memory"]
    text = format_table(rows, ["hot path", "reference_s", "vectorized_s", "speedup"])
    text += (
        "\n\nAll vectorized outputs bit-identical to the reference implementations."
        f"\nShared-memory plan: {shared['n_jobs']} fit jobs pickled "
        f"{shared['plain_pickled_bytes']} bytes plain vs "
        f"{shared['shared_pickled_bytes']} bytes shared "
        f"({shared['bytes_ratio']:.0f}x smaller, "
        f"{shared['segments_written']} segment written once)."
    )
    report("E13: Hot-path vectorization", text)

    assert all(entry["speedup"] > 1.0 for entry in payload["entries"])
