"""Baseline methods as first-class, servable estimators.

:class:`~repro.baselines.registry.BaselineMethod` is a thin
``fit_predict``-only shim: it cannot be checkpointed, grid-swept with typed
configs, or served.  :class:`BaselineEstimator` adapts any registered
baseline to the :class:`~repro.api.protocol.Estimator` protocol:

* ``fit`` validates the training data through the same shared dataset
  checks :meth:`KGraph.validate_fit_input` uses — ragged or NaN input
  raises an actionable :class:`~repro.exceptions.ValidationError` instead
  of failing deep inside a clustering routine;
* the full parameterisation lives in a
  :class:`~repro.api.config.BaselineConfig`, so ``from_config(get_config())``
  refits bit-identically and grids expand through one code path;
* ``predict`` / ``prediction_state`` give every baseline the standard
  out-of-sample extension — nearest cluster centroid on z-normalised
  series — packaged as the picklable :class:`CentroidPredictionState` the
  serving stack's micro-batching engine dispatches through any execution
  backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.api.config import BaselineConfig
from repro.baselines.registry import BaselineMethod, get_method
from repro.exceptions import NotFittedError, ValidationError
from repro.utils.containers import TimeSeriesDataset
from repro.utils.normalization import znormalize_dataset
from repro.utils.validation import check_time_series_dataset


@dataclass(frozen=True)
class CentroidPredictionState:
    """Everything a baseline's ``predict`` needs, extracted from a fit once.

    A plain bundle of NumPy arrays (hence picklable), mirroring the role
    :class:`~repro.core.kgraph.PredictionState` plays for k-Graph: the
    serving layer prepares it once per model and dispatches prediction
    micro-batches through any execution backend.

    Attributes
    ----------
    length:
        Training series length; predict input must match it exactly (a
        centroid has no windowing story for other lengths).
    centroids:
        ``(n_clusters, length)`` mean z-normalised training series per
        cluster, in ``clusters`` order.
    centroids_sq:
        Per-row squared norms of ``centroids``, hoisted once.
    clusters:
        Cluster identifiers aligned with the ``centroids`` rows.
    """

    length: int
    centroids: np.ndarray
    centroids_sq: np.ndarray
    clusters: np.ndarray

    @property
    def n_clusters(self) -> int:
        """Number of clusters the state can assign to."""
        return int(self.centroids.shape[0])

    def predict_batch(self, array: np.ndarray) -> np.ndarray:
        """Assign validated equal-length series to the nearest centroid.

        Series are z-normalised (matching how the centroids were built) and
        assigned with the expanded squared-distance form
        ``|x|^2 - 2 x.c + |c|^2`` — each series independently, so results
        never depend on micro-batch composition.
        """
        data = znormalize_dataset(np.ascontiguousarray(array, dtype=float))
        distances = (
            np.sum(data**2, axis=1)[:, None]
            - 2.0 * data @ self.centroids.T
            + self.centroids_sq[None, :]
        )
        nearest = np.argmin(distances, axis=1)
        return self.clusters[nearest].astype(int)


class BaselineEstimator:
    """Adapter exposing one registered baseline through the Estimator protocol.

    Parameters
    ----------
    config:
        A :class:`~repro.api.config.BaselineConfig` naming the method and
        carrying ``n_clusters`` / ``random_state``.  The method name is
        resolved against the baseline registry eagerly, so an unknown name
        fails at construction with the available names listed.
    """

    def __init__(self, config: BaselineConfig) -> None:
        if not isinstance(config, BaselineConfig):
            raise ValidationError(
                f"BaselineEstimator needs a BaselineConfig, got "
                f"{type(config).__name__}"
            )
        self.config = config
        self.method: BaselineMethod = get_method(config.method)
        self.labels_: Optional[np.ndarray] = None
        self.n_clusters_: Optional[int] = None
        self.length_: Optional[int] = None
        self._state: Optional[CentroidPredictionState] = None

    # ------------------------------------------------------------------ #
    # Estimator protocol
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Registry name of the wrapped method."""
        return self.method.name

    @property
    def family(self) -> str:
        """Method family (``raw``, ``feature``, ``density``, ...)."""
        return self.method.family

    def get_config(self) -> BaselineConfig:
        """The typed config this estimator was built from."""
        return self.config

    @classmethod
    def from_config(cls, config: BaselineConfig, **_runtime) -> "BaselineEstimator":
        """Build an estimator from its config (runtime kwargs are ignored:
        baselines run in-process with no backend/cache knobs)."""
        return cls(config)

    def validate_fit_input(self, data) -> np.ndarray:
        """Validate training data and return it as a 2-D array.

        The same shared checks :meth:`KGraph.validate_fit_input` applies:
        ragged inputs name the differing series lengths, NaN/infinite
        values are located (series and position), and too-small datasets
        state the requirement — instead of an opaque failure deep inside
        the wrapped clustering routine.  A :class:`TimeSeriesDataset` was
        already fully validated at construction (and is immutable), so it
        only gets the stricter n_clusters-aware series-count check, not a
        second full scan.
        """
        min_series = max(2, self.config.n_clusters or 2)
        if isinstance(data, TimeSeriesDataset):
            if data.n_series < min_series:
                raise ValidationError(
                    f"training data must contain at least {min_series} time "
                    f"series, got {data.n_series}"
                )
            return data.data
        return check_time_series_dataset(data, name="training data", min_series=min_series)

    def _resolve_n_clusters(self, dataset: TimeSeriesDataset) -> int:
        if self.config.n_clusters is not None:
            return int(self.config.n_clusters)
        return dataset.default_cluster_count()

    def fit(self, data) -> "BaselineEstimator":
        """Run the wrapped method and derive the centroid prediction state."""
        array = self.validate_fit_input(data)
        if isinstance(data, TimeSeriesDataset):
            dataset = data
        else:
            dataset = TimeSeriesDataset(array, name="adhoc")
        n_clusters = self._resolve_n_clusters(dataset)
        labels = self.method.fit_predict(
            dataset, n_clusters, random_state=self.config.random_state
        )
        self.labels_ = labels
        self.n_clusters_ = int(np.unique(labels).size)
        self.length_ = int(array.shape[1])
        normalised = znormalize_dataset(array)
        clusters = np.unique(labels)
        centroids = np.vstack(
            [normalised[labels == cluster].mean(axis=0) for cluster in clusters]
        )
        self._state = CentroidPredictionState(
            length=self.length_,
            centroids=centroids,
            centroids_sq=np.sum(centroids**2, axis=1),
            clusters=clusters,
        )
        return self

    def fit_predict(self, data) -> np.ndarray:
        """Fit the wrapped method and return the cleaned labels."""
        return self.fit(data).labels_

    def _check_fitted(self) -> None:
        if self._state is None:
            raise NotFittedError(
                f"this {self.name!r} baseline estimator is not fitted yet; "
                "call fit(data) first"
            )

    def validate_predict_input(self, data) -> np.ndarray:
        """Validate predict input: 2-D numeric, training length, no NaNs."""
        self._check_fitted()
        array = check_time_series_dataset(data, name="predict input", min_series=1)
        if array.shape[1] != self.length_:
            raise ValidationError(
                f"predict input series have length {array.shape[1]} but this "
                f"{self.name!r} estimator was fitted on series of length "
                f"{self.length_}; centroid assignment needs matching lengths"
            )
        return array

    def predict(self, data) -> np.ndarray:
        """Assign new series to the nearest fitted cluster centroid."""
        array = self.validate_predict_input(data)
        return self._state.predict_batch(array)

    def prediction_state(self) -> CentroidPredictionState:
        """The prepared, picklable serving state of the fitted estimator."""
        self._check_fitted()
        return self._state

    def summary(self) -> Dict[str, object]:
        """JSON-serialisable description of the fitted estimator."""
        self._check_fitted()
        values, counts = np.unique(self.labels_, return_counts=True)
        return {
            "estimator": self.name,
            "family": self.family,
            "config": self.config.to_dict(),
            "n_series": int(self.labels_.shape[0]),
            "n_clusters": int(self.n_clusters_),
            "length": int(self.length_),
            "cluster_sizes": {int(v): int(c) for v, c in zip(values, counts)},
        }

    # ------------------------------------------------------------------ #
    # artifact payloads (consumed by repro.serve.artifacts)
    # ------------------------------------------------------------------ #
    def artifact_arrays(self) -> Dict[str, np.ndarray]:
        """The numeric payloads a model artifact stores for this estimator."""
        self._check_fitted()
        return {
            "labels": self.labels_,
            "centroids": self._state.centroids,
            "clusters": self._state.clusters,
        }

    def artifact_fitted(self) -> Dict[str, object]:
        """The ``fitted`` manifest block describing this estimator."""
        self._check_fitted()
        return {
            "n_series": int(self.labels_.shape[0]),
            "n_clusters": int(self.n_clusters_),
            "length": int(self.length_),
        }

    def restore_artifact(
        self,
        fitted: Dict[str, object],
        arrays: Dict[str, np.ndarray],
    ) -> "BaselineEstimator":
        """Restore the fitted state from artifact payloads (returns self).

        The instance-level half of the artifact contract: the serve layer
        builds the estimator from its config through the registry, then
        hands the stored payloads to this hook — so artifact loading
        dispatches through :func:`repro.api.default_registry` instead of
        hard-coding estimator classes.
        """
        for required in ("labels", "centroids", "clusters"):
            if required not in arrays:
                raise ValidationError(
                    f"baseline artifact arrays are missing entry {required!r}"
                )
        centroids = np.asarray(arrays["centroids"], dtype=float)
        self.labels_ = np.asarray(arrays["labels"]).astype(int)
        self.n_clusters_ = int(fitted["n_clusters"])
        self.length_ = int(fitted["length"])
        self._state = CentroidPredictionState(
            length=self.length_,
            centroids=centroids,
            centroids_sq=np.sum(centroids**2, axis=1),
            clusters=np.asarray(arrays["clusters"]).astype(int),
        )
        return self
