"""Tests for the deterministic chaos harness (:mod:`repro.parallel.chaos`).

Every fault-recovery path in the execution layer is driven here by seeded
:class:`ChaosPlan`\\ s: worker kills with chunk bisection, hang watchdogs,
dropped shared-memory results, pool-rebuild bounds, fallback demotion, and
the end-to-end acceptance scenario — a k-Graph fit on a chaos-wrapped
process backend stays bit-identical to the serial run.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import generate_dataset
from repro.core.kgraph import KGraph
from repro.exceptions import ValidationError
from repro.parallel import (
    ChaosBackend,
    ChaosError,
    ChaosPlan,
    FallbackBackend,
    ProcessBackend,
    RetryPolicy,
    SerialBackend,
    SharedMemoryBackend,
    WorkerCrashError,
    WorkerPoolExhausted,
)


def _square(value: int) -> int:
    """Module-level so the process backend can pickle it."""
    return value * value


class TestChaosPlan:
    def test_scatter_is_deterministic_and_disjoint(self):
        first = ChaosPlan.scatter(20, kills=2, hangs=2, raises=3, seed=42)
        second = ChaosPlan.scatter(20, kills=2, hangs=2, raises=3, seed=42)
        assert first == second
        victims = first.kills | first.hangs | first.raises
        assert len(victims) == 7, "fault kinds must hit disjoint indices"
        other_seed = ChaosPlan.scatter(20, kills=2, hangs=2, raises=3, seed=43)
        assert other_seed != first

    def test_scatter_rejects_oversubscription(self):
        with pytest.raises(ValidationError):
            ChaosPlan.scatter(3, kills=2, raises=2)

    def test_fault_priority(self):
        plan = ChaosPlan(kills=frozenset({1}), raises=frozenset({1, 2}))
        assert plan.fault_for(1) == "kill"
        assert plan.fault_for(2) == "raise"
        assert plan.fault_for(0) is None
        assert plan.n_faults == 2

    def test_sets_normalised_to_frozenset(self):
        plan = ChaosPlan(raises={0, 1})
        assert isinstance(plan.raises, frozenset)


class TestChaosBackendBasics:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValidationError):
            ChaosBackend("serial", ChaosPlan())
        with pytest.raises(ValidationError):
            ChaosBackend(SerialBackend(), {"kills": {0}})

    def test_raise_fault_fires_once_then_retry_recovers(self):
        plan = ChaosPlan(raises=frozenset({1}))
        backend = ChaosBackend(SerialBackend(), plan)
        outcomes = backend.map_jobs(
            _square, [1, 2, 3], retry=RetryPolicy(max_attempts=3)
        )
        assert [outcome.value for outcome in outcomes] == [1, 4, 9]
        assert outcomes[1].attempts == 2
        assert outcomes[1].retried is True
        assert outcomes[0].attempts == 1
        assert backend.injections == [
            {"index": 1, "fault": "raise", "persistent": False}
        ]

    def test_persistent_raise_exhausts_retries(self):
        plan = ChaosPlan(raises=frozenset({0}), persistent=True)
        backend = ChaosBackend(SerialBackend(), plan)
        outcomes = backend.map_jobs(
            _square, [5], retry=RetryPolicy(max_attempts=3)
        )
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 3
        assert isinstance(outcomes[0].exception, ChaosError)

    def test_no_faults_is_passthrough(self):
        backend = ChaosBackend(SerialBackend(), ChaosPlan())
        outcomes = backend.map_jobs(_square, [2, 3])
        assert [outcome.value for outcome in outcomes] == [4, 9]
        assert backend.injections == []


class TestWorkerKillRecovery:
    def test_kill_recovered_and_bitwise_identical(self):
        plan = ChaosPlan(kills=frozenset({2}))
        with ProcessBackend(2) as inner:
            backend = ChaosBackend(inner, plan)
            outcomes = backend.map_jobs(
                _square, list(range(6)), retry=RetryPolicy(max_attempts=3)
            )
        assert [outcome.value for outcome in outcomes] == [
            value * value for value in range(6)
        ]
        assert backend.pool_rebuilds >= 1
        assert outcomes[2].attempts >= 2

    def test_chunk_bisection_isolates_poison_job(self):
        # chunk_size=4 puts the persistent killer in a chunk with three
        # innocents: bisection must recover all three and pin the crash on
        # the single poison job.  Every bisection round consumes a rebuild,
        # so the budget is raised accordingly.
        plan = ChaosPlan(kills=frozenset({1}), persistent=True)
        policy = RetryPolicy(max_attempts=2, max_pool_rebuilds=10)
        with ProcessBackend(2, chunk_size=4) as inner:
            backend = ChaosBackend(inner, plan)
            outcomes = backend.map_jobs(_square, list(range(8)), retry=policy)
        poison = outcomes[1]
        assert not poison.ok
        assert isinstance(poison.exception, WorkerCrashError)
        for index, outcome in enumerate(outcomes):
            if index == 1:
                continue
            assert outcome.ok, f"innocent chunk-mate {index} lost: {outcome.error}"
            assert outcome.value == index * index

    def test_rebuild_budget_exhaustion(self):
        plan = ChaosPlan(kills=frozenset({0}), persistent=True)
        policy = RetryPolicy(max_attempts=2, max_pool_rebuilds=0)
        with ProcessBackend(2) as inner:
            backend = ChaosBackend(inner, plan)
            outcomes = backend.map_jobs(_square, list(range(4)), retry=policy)
        assert any(
            isinstance(outcome.exception, (WorkerPoolExhausted, WorkerCrashError))
            for outcome in outcomes
            if not outcome.ok
        )

    def test_hang_recovered_by_watchdog(self):
        plan = ChaosPlan(hangs=frozenset({1}), hang_seconds=30.0)
        policy = RetryPolicy(max_attempts=2, timeout=0.5)
        start = time.monotonic()
        with ProcessBackend(2) as inner:
            backend = ChaosBackend(inner, plan)
            outcomes = backend.map_jobs(
                _square, list(range(4)), retry=policy
            )
        elapsed = time.monotonic() - start
        assert elapsed < 15.0, "the hang must be abandoned, not waited out"
        assert [outcome.value for outcome in outcomes] == [0, 1, 4, 9]
        assert outcomes[1].attempts >= 2
        assert backend.pool_rebuilds >= 1
        # The hang was *recovered*: the final outcome is a success, so the
        # timeout counter (final outcomes only) stays at zero.
        assert backend.timeouts == 0


class TestSharedMemoryChaos:
    def test_dropped_result_segment_is_retried(self):
        plan = ChaosPlan(drop_results=frozenset({1}))
        with SharedMemoryBackend(2, min_share_bytes=0, min_result_bytes=0) as inner:
            backend = ChaosBackend(inner, plan)
            outcomes = backend.map_jobs(
                _square, [3, 4, 5], retry=RetryPolicy(max_attempts=3)
            )
        assert [outcome.value for outcome in outcomes] == [9, 16, 25]
        assert outcomes[1].attempts == 2
        assert outcomes[1].retried is True

    def test_kill_path_leaves_no_tracker_warnings(self):
        """A worker kill mid-fan-out must not leak shared_memory segments
        (extends the PR 6 zero-leak test to the crash-recovery path)."""
        script = (
            "from repro.parallel import ChaosBackend, ChaosPlan, RetryPolicy\n"
            "from repro.parallel import SharedMemoryBackend\n"
            "from tests.test_chaos import _square\n"
            "plan = ChaosPlan(kills=frozenset({1}))\n"
            "with SharedMemoryBackend(2, min_share_bytes=0, min_result_bytes=0) as inner:\n"
            "    backend = ChaosBackend(inner, plan)\n"
            "    outcomes = backend.map_jobs(_square, list(range(5)),\n"
            "                                retry=RetryPolicy(max_attempts=3))\n"
            "print('OK', sum(1 for o in outcomes if o.ok))\n"
        )
        root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([str(root / "src"), str(root)])
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=300,
            cwd=str(root),
            env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "OK 5" in result.stdout
        assert "leaked shared_memory" not in result.stderr


class TestFallbackDemotion:
    def test_exhausted_chaos_backend_demotes_to_serial(self):
        plan = ChaosPlan(kills=frozenset({0}), persistent=True)
        policy = RetryPolicy(max_attempts=2, max_pool_rebuilds=0)
        with ProcessBackend(2) as inner:
            chain = FallbackBackend([ChaosBackend(inner, plan), SerialBackend()])
            outcomes = chain.map_jobs(_square, list(range(4)), retry=policy)
        # The successor member is the plain SerialBackend — not wrapped in
        # chaos — so the demoted re-run sees no faults at all and every job
        # succeeds.
        assert chain.active_index == 1
        assert len(chain.demotions) == 1
        assert chain.demotions[0]["event"] == "backend_demoted"
        assert [outcome.value for outcome in outcomes] == [
            index * index for index in range(4)
        ]

    def test_demoted_run_matches_serial_when_faults_fire_once(self):
        plan = ChaosPlan(kills=frozenset({0}))
        policy = RetryPolicy(max_attempts=3, max_pool_rebuilds=0)
        with ProcessBackend(2) as inner:
            chain = FallbackBackend([ChaosBackend(inner, plan), SerialBackend()])
            outcomes = chain.map_jobs(_square, list(range(5)), retry=policy)
        reference = SerialBackend().map_jobs(_square, list(range(5)))
        assert [outcome.value for outcome in outcomes] == [
            outcome.value for outcome in reference
        ]


class TestKGraphAcceptance:
    def test_fit_under_chaos_is_bit_identical_to_serial(self):
        """The ISSUE acceptance scenario: a seeded plan that kills a worker
        and hangs a job; the chaos-wrapped process fit must complete within
        the watchdog budget with labels bit-identical to the serial run."""
        dataset = generate_dataset("cylinder_bell_funnel", random_state=0)
        serial = KGraph(n_clusters=3, n_lengths=2, random_state=0).fit(dataset.data)

        plan = ChaosPlan(
            kills=frozenset({0}), hangs=frozenset({1}), hang_seconds=30.0
        )
        policy = RetryPolicy(max_attempts=3, timeout=5.0)
        start = time.monotonic()
        with ProcessBackend(2) as inner:
            chaotic = KGraph(
                n_clusters=3,
                n_lengths=2,
                random_state=0,
                backend=ChaosBackend(inner, plan),
                retry=policy,
            ).fit(dataset.data)
        elapsed = time.monotonic() - start
        assert elapsed < 120.0
        assert np.array_equal(serial.labels_, chaotic.labels_)
        assert serial.optimal_length_ == chaotic.optimal_length_
        # The injected faults actually happened and were recovered.
        report = chaotic.pipeline_report_
        assert report.total_attempts > 0
        assert report.total_pool_rebuilds >= 1
