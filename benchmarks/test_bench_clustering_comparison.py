"""E1 — Clustering-comparison frame (Fig. 3, frame 1.1).

For one dataset per family, run k-Graph and the two reference baselines
(k-Means, k-Shape) and report their ARI side by side — exactly the numbers
the frame annotates its panels with.  The expected shape (from the paper):
k-Graph is competitive or better than both baselines on pattern datasets.
"""

from __future__ import annotations

import pytest

from bench_utils import bench_catalogue, format_table, report
from repro.metrics.clustering import adjusted_rand_index
from repro.viz.session import GraphintSession

DATASETS = ("cylinder_bell_funnel", "two_patterns", "seasonal_mixture", "trend_classes")


def _run_comparison():
    catalogue = bench_catalogue()
    rows = []
    for name in DATASETS:
        dataset = catalogue.get(name).generate(random_state=0)
        session = GraphintSession(dataset, n_lengths=3, random_state=0).fit()
        row = {"dataset": name}
        for method, labels in session.method_labels.items():
            row[method] = adjusted_rand_index(dataset.labels, labels)
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="E1-clustering-comparison")
def test_bench_clustering_comparison_frame(benchmark):
    rows = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)
    table = format_table(rows, ["dataset", "kgraph", "kmeans", "kshape"])
    wins = sum(1 for row in rows if row["kgraph"] >= max(row["kmeans"], row["kshape"]) - 0.05)
    summary = (
        f"{table}\n\nk-Graph best-or-tied on {wins}/{len(rows)} datasets "
        "(paper expectation: competitive or better on pattern datasets)."
    )
    report("E1: Clustering comparison frame (ARI per method)", summary)
    benchmark.extra_info["kgraph_wins"] = wins
    benchmark.extra_info["rows"] = [{k: round(v, 3) if isinstance(v, float) else v for k, v in r.items()} for r in rows]
    assert wins >= len(rows) // 2
