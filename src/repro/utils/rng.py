"""Reproducible random number generation helpers.

Every stochastic component in the library accepts ``random_state`` and
resolves it through :func:`repro.utils.validation.check_random_state`; the
helpers here make it easy to derive independent child generators for
multi-stage pipelines (one per subsequence length, one per restart, ...).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Union

import numpy as np

from repro.utils.validation import check_positive_int, check_random_state


def spawn_rng(random_state, n_children: int) -> List[np.random.Generator]:
    """Derive ``n_children`` statistically independent generators.

    The derivation is deterministic given ``random_state`` so repeated runs of
    a pipeline produce identical results, while the children remain
    independent of each other (they each get their own stream).
    """
    n_children = check_positive_int(n_children, "n_children")
    rng = check_random_state(random_state)
    seeds = rng.integers(0, 2**31 - 1, size=n_children)
    return [np.random.default_rng(int(seed)) for seed in seeds]


class SeedSequencePool:
    """A pool handing out deterministic child generators on demand.

    Useful when the number of stochastic sub-tasks is not known upfront
    (for example one generator per benchmark run).
    """

    def __init__(self, random_state: Union[None, int, np.random.Generator] = None) -> None:
        self._root = check_random_state(random_state)
        self._count = 0

    def next_rng(self) -> np.random.Generator:
        """Return the next child generator from the pool."""
        self._count += 1
        seed = int(self._root.integers(0, 2**31 - 1))
        return np.random.default_rng(seed)

    def next_seed(self) -> int:
        """Return the next integer seed from the pool."""
        self._count += 1
        return int(self._root.integers(0, 2**31 - 1))

    @property
    def issued(self) -> int:
        """Number of generators/seeds issued so far."""
        return self._count

    def iter_rngs(self, count: Optional[int] = None) -> Iterator[np.random.Generator]:
        """Yield ``count`` child generators (or indefinitely when ``None``)."""
        produced = 0
        while count is None or produced < count:
            yield self.next_rng()
            produced += 1
