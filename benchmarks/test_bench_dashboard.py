"""E10 — Figure 2: the Graphint system overview (dashboard generation).

Builds every frame of the tool for one dataset (the path the Streamlit app
takes when the analyst selects a dataset) and reports generation time and
artifact sizes.  This is the "system" half of the demo: the experiment checks
that the full dashboard — all five frames with every plot — can be produced
end-to-end from a single fitted session.
"""

from __future__ import annotations

import time

import pytest

from bench_utils import RESULTS_DIR, bench_catalogue, format_table, report
from repro.benchmark.runner import BenchmarkRunner
from repro.viz.dashboard import build_dashboard
from repro.viz.session import GraphintSession


def _run_dashboard_build():
    catalogue = bench_catalogue()
    dataset = catalogue.get("cylinder_bell_funnel").generate(random_state=6)

    timings = {}
    start = time.perf_counter()
    session = GraphintSession(dataset, n_lengths=3, random_state=6).fit()
    timings["fit session (k-Graph + k-Means + k-Shape)"] = time.perf_counter() - start

    start = time.perf_counter()
    session.build_quizzes(n_users=3)
    timings["build + answer quizzes"] = time.perf_counter() - start

    start = time.perf_counter()
    results = BenchmarkRunner(
        ["kmeans", "kshape", "featts_like", "gmm", "kgraph"],
        catalogue=catalogue,
        random_state=6,
    ).run(["cylinder_bell_funnel", "trend_classes"])
    timings["small benchmark campaign (Benchmark frame)"] = time.perf_counter() - start

    start = time.perf_counter()
    output_path = RESULTS_DIR / "graphint_dashboard.html"
    page = build_dashboard(session, benchmark_results=results, output_path=output_path)
    timings["render all five frames to HTML"] = time.perf_counter() - start
    return page, timings


@pytest.mark.benchmark(group="E10-dashboard")
def test_bench_dashboard_generation(benchmark):
    page, timings = benchmark.pedantic(_run_dashboard_build, rounds=1, iterations=1)
    rows = [{"step": step, "seconds": seconds} for step, seconds in timings.items()]
    frame_ids = [
        "clustering-comparison",
        "benchmark",
        "graph-frame",
        "interpretability-test",
        "under-the-hood",
    ]
    present = [frame_id for frame_id in frame_ids if f'id="{frame_id}"' in page]
    summary = (
        format_table(rows, ["step", "seconds"])
        + f"\n\ndashboard size: {len(page) / 1024:.0f} KiB, embedded SVG plots: {page.count('<svg')}"
        + f"\nframes present: {', '.join(present)}"
        + f"\nwritten to {RESULTS_DIR / 'graphint_dashboard.html'}"
    )
    report("E10: Dashboard generation (Fig. 2 system overview)", summary)
    benchmark.extra_info["dashboard_kib"] = round(len(page) / 1024)
    benchmark.extra_info["svg_count"] = page.count("<svg")
    assert set(present) == set(frame_ids)
