"""Deterministic fault injection for :class:`ExecutionBackend` fan-outs.

:class:`ChaosBackend` wraps any real backend and injects faults into jobs
according to a seeded :class:`ChaosPlan` — the same plan always hits the
same job indices with the same faults, so every recovery path in
:mod:`repro.parallel.backends` (retry, chunk bisection, pool rebuild,
timeout watchdogs, fallback demotion) is driven by ordinary, reproducible
tests instead of flaky hardware.

Fault kinds:

* ``raise`` — the job raises :class:`ChaosError` (retryable failure);
* ``delay`` — the job sleeps ``delay_seconds`` before running (exercises
  timeouts without killing anything);
* ``hang`` — the job sleeps ``hang_seconds`` (a stand-in for "forever":
  long enough that only a timeout watchdog ends the attempt);
* ``kill`` — the job calls ``os._exit`` inside its worker **process**,
  breaking the pool; in a distributed worker *service* (which marks itself
  via :data:`WORKER_PROCESS_ENV`) the whole service dies mid-request, the
  same signal as a SIGKILLed machine (downgraded to ``raise`` when the job
  is not running in any worker process, so a serial/thread backend — e.g.
  after a fallback demotion — is never killed);
* ``drop_result`` — the job returns a dangling shared-memory result
  reference, so the coordinator's resolution fails exactly like a vanished
  ``/dev/shm`` segment; on other backends it raises
  :class:`ChaosDroppedResult`, which a distributed worker recognises and
  answers 200 with the outcome *omitted* — a result lost in flight
  (a plain retryable failure anywhere else).

Each fault fires on the **first attempt only** (exactly-once arming via
``O_CREAT | O_EXCL`` token files, which works across process boundaries),
so a retried job succeeds and recovery is observable end-to-end.  Set
``persistent=True`` on the plan to fire on every attempt instead —
that is how retry *exhaustion* and pool-rebuild bounds are tested.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence

from repro.exceptions import ParallelExecutionError, ValidationError
from repro.parallel.backends import (
    ExecutionBackend,
    JobOutcome,
    OnResult,
)
from repro.parallel.retry import RetryPolicy


class ChaosError(ParallelExecutionError):
    """The failure raised by an injected ``raise`` fault."""


class ChaosDroppedResult(ChaosError):
    """The failure raised by a ``drop_result`` fault outside shared memory.

    A distinct subclass so the distributed worker service can recognise it
    and *omit* the job's outcome from its HTTP response entirely — the
    coordinator then sees a 200 with a missing result, exactly the
    lost-in-flight shape the fault models.  For local backends it behaves
    like any other retryable :class:`ChaosError`.
    """


#: Dispatch priority when one index appears in several fault sets.
_FAULT_KINDS = ("kill", "hang", "drop_result", "raise", "delay")


@dataclass(frozen=True)
class ChaosPlan:
    """A frozen, seeded assignment of faults to job indices.

    Build one explicitly (``ChaosPlan(kills=frozenset({3}))``) or with
    :meth:`scatter`, which samples disjoint victim indices from a seeded
    RNG — no wall-clock randomness, ever.
    """

    raises: FrozenSet[int] = field(default_factory=frozenset)
    delays: FrozenSet[int] = field(default_factory=frozenset)
    hangs: FrozenSet[int] = field(default_factory=frozenset)
    kills: FrozenSet[int] = field(default_factory=frozenset)
    drop_results: FrozenSet[int] = field(default_factory=frozenset)
    delay_seconds: float = 0.05
    hang_seconds: float = 30.0
    #: ``False`` (default): each fault fires on the victim's first attempt
    #: only, so retries recover.  ``True``: the fault fires on every
    #: attempt — for testing exhaustion bounds.
    persistent: bool = False

    def __post_init__(self) -> None:
        for name in ("raises", "delays", "hangs", "kills", "drop_results"):
            object.__setattr__(self, name, frozenset(getattr(self, name)))
        if float(self.delay_seconds) < 0 or float(self.hang_seconds) < 0:
            raise ValidationError("delay_seconds/hang_seconds must be >= 0")

    @classmethod
    def scatter(
        cls,
        n_jobs: int,
        *,
        kills: int = 0,
        hangs: int = 0,
        raises: int = 0,
        delays: int = 0,
        drop_results: int = 0,
        seed: int = 0,
        delay_seconds: float = 0.05,
        hang_seconds: float = 30.0,
        persistent: bool = False,
    ) -> "ChaosPlan":
        """Sample disjoint victim indices for each fault kind, seeded."""
        wanted = kills + hangs + raises + delays + drop_results
        if wanted > int(n_jobs):
            raise ValidationError(
                f"cannot scatter {wanted} faults over {n_jobs} jobs"
            )
        victims = Random(int(seed)).sample(range(int(n_jobs)), wanted)
        cursor = iter(victims)
        take = lambda count: frozenset(next(cursor) for _ in range(count))  # noqa: E731
        return cls(
            kills=take(kills),
            hangs=take(hangs),
            raises=take(raises),
            delays=take(delays),
            drop_results=take(drop_results),
            delay_seconds=delay_seconds,
            hang_seconds=hang_seconds,
            persistent=persistent,
        )

    def fault_for(self, index: int) -> Optional[str]:
        """The fault kind injected into job ``index``, if any."""
        for kind, members in (
            ("kill", self.kills),
            ("hang", self.hangs),
            ("drop_result", self.drop_results),
            ("raise", self.raises),
            ("delay", self.delays),
        ):
            if index in members:
                return kind
        return None

    @property
    def n_faults(self) -> int:
        """Distinct job indices with a fault assigned."""
        return len(
            self.kills | self.hangs | self.drop_results | self.raises | self.delays
        )


def _arm(token: Optional[str]) -> bool:
    """Claim a fault's one firing; exactly-once across process boundaries.

    The token is a filesystem path created with ``O_CREAT | O_EXCL``: the
    first process (or attempt) to create it wins and fires the fault, every
    later attempt sees ``FileExistsError`` and runs the job cleanly.
    ``None`` (persistent plans) always fires.
    """
    if token is None:
        return True
    try:
        fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return True  # token dir vanished mid-fan-out: best effort, fire
    os.close(fd)
    return True


#: Environment flag a distributed worker *service* process sets on startup
#: (see ``graphint worker``): the process is sacrificial, so a ``kill``
#: fault may ``os._exit`` it even though it is not a multiprocessing child.
WORKER_PROCESS_ENV = "REPRO_WORKER_PROCESS"


def _in_worker_process() -> bool:
    """Whether the current process may be killed by a ``kill`` fault.

    True for multiprocessing children (process-pool workers) and for
    processes that declared themselves sacrificial via
    :data:`WORKER_PROCESS_ENV` (distributed worker services, which are
    plain top-level processes, not multiprocessing children).
    """
    if os.environ.get(WORKER_PROCESS_ENV) == "1":
        return True
    try:
        import multiprocessing

        return multiprocessing.parent_process() is not None
    except Exception:  # noqa: BLE001 - conservative: assume coordinator
        return False


@dataclass(frozen=True)
class _ChaosJob:
    """Picklable wrapper pairing one job with its (optional) fault.

    A frozen dataclass so :func:`repro.parallel.shared._swap_leaves` still
    reaches the wrapped ``job`` payload and substitutes shared arrays —
    chaos wrapping must not disable the zero-copy path it is testing.
    """

    fault: Optional[str]
    seconds: float
    token: Optional[str]
    shared_results: bool
    job: Any


class _ChaosRunner:
    """Picklable job-function wrapper that fires the armed fault, then runs."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Any], Any]) -> None:
        self.fn = fn

    def __call__(self, wrapped: _ChaosJob) -> Any:
        fault = wrapped.fault
        if fault is not None and _arm(wrapped.token):
            if fault == "kill":
                if _in_worker_process():
                    os._exit(17)
                # Not in a worker (serial/thread backend, or a demoted
                # fallback member): killing here would take down the
                # coordinator — degrade to a retryable failure.
                raise ChaosError("injected kill (no worker process to kill)")
            if fault == "hang":
                time.sleep(wrapped.seconds)
                raise ChaosError(
                    f"injected hang outlived its {wrapped.seconds} s stand-in"
                )
            if fault == "raise":
                raise ChaosError("injected failure")
            if fault == "delay":
                time.sleep(wrapped.seconds)
            elif fault == "drop_result":
                if wrapped.shared_results:
                    from repro.parallel.shared import _SharedResultRef

                    # A ref to a segment that never existed: the
                    # coordinator's resolution fails exactly like a
                    # vanished /dev/shm segment.
                    return _SharedResultRef("repro-chaos-dropped", (1,), "<f8")
                # Recognisable by the distributed worker service, which
                # omits the outcome from its response instead of failing it.
                raise ChaosDroppedResult("injected result drop (no shared results)")
        return self.fn(wrapped.job)


class ChaosBackend(ExecutionBackend):
    """Wrap a real backend, injecting the plan's faults into its jobs.

    Everything else — ordered results, error capture, retry policy,
    counters — is the inner backend's; the wrapper only decorates jobs on
    the way in.  ``close()`` closes the inner backend.
    """

    name = "chaos"

    def __init__(self, inner: ExecutionBackend, plan: ChaosPlan) -> None:
        if not isinstance(inner, ExecutionBackend):
            raise ValidationError(
                f"inner must be an ExecutionBackend, got {type(inner).__name__}"
            )
        if not isinstance(plan, ChaosPlan):
            raise ValidationError(
                f"plan must be a ChaosPlan, got {type(plan).__name__}"
            )
        self.inner = inner
        self.plan = plan
        #: Structured log of the faults this wrapper wired up, per fan-out.
        self.injections: List[Dict[str, object]] = []

    # Counters proxy to the inner backend so pipelines instrument the chaos
    # run exactly like a plain one.
    @property
    def bytes_shipped(self) -> int:  # type: ignore[override]
        return int(getattr(self.inner, "bytes_shipped", 0))

    @property
    def attempts(self) -> int:  # type: ignore[override]
        return int(getattr(self.inner, "attempts", 0))

    @property
    def timeouts(self) -> int:  # type: ignore[override]
        return int(getattr(self.inner, "timeouts", 0))

    @property
    def pool_rebuilds(self) -> int:  # type: ignore[override]
        return int(getattr(self.inner, "pool_rebuilds", 0))

    def map_jobs(
        self,
        fn: Callable[[Any], Any],
        jobs: Sequence[Any],
        *,
        on_result: OnResult = None,
        retry: Optional[RetryPolicy] = None,
    ) -> List[JobOutcome]:
        jobs = list(jobs)
        if not jobs:
            return []
        # Import here, not at module top: chaos must work without shared.py
        # being importable (it needs numpy) in principle, and the check is
        # only needed per fan-out.
        try:
            from repro.parallel.shared import SharedMemoryBackend

            shared_results = isinstance(self.inner, SharedMemoryBackend) and bool(
                getattr(self.inner, "share_results", False)
            )
        except Exception:  # noqa: BLE001
            shared_results = False
        tokens_dir = tempfile.mkdtemp(prefix="repro-chaos-")
        wrapped: List[_ChaosJob] = []
        for index, job in enumerate(jobs):
            fault = self.plan.fault_for(index)
            token = (
                None
                if fault is None or self.plan.persistent
                else os.path.join(tokens_dir, f"job-{index}.token")
            )
            seconds = (
                self.plan.hang_seconds
                if fault == "hang"
                else self.plan.delay_seconds
            )
            if fault is not None:
                self.injections.append(
                    {"index": index, "fault": fault, "persistent": self.plan.persistent}
                )
            wrapped.append(
                _ChaosJob(
                    fault=fault,
                    seconds=seconds,
                    token=token,
                    shared_results=shared_results,
                    job=job,
                )
            )
        policy = retry if retry is not None else self.retry
        kwargs: Dict[str, Any] = {"on_result": on_result}
        if policy is not None:
            kwargs["retry"] = policy
        try:
            return self.inner.map_jobs(_ChaosRunner(fn), wrapped, **kwargs)
        finally:
            shutil.rmtree(tokens_dir, ignore_errors=True)

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ChaosBackend(inner={self.inner!r}, faults={self.plan.n_faults})"
