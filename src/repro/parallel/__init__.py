"""Pluggable parallel execution for the k-Graph pipeline and benchmarks.

Parallel execution
------------------
The paper's pipeline is embarrassingly parallel in two places: the M
per-length *graph embedding + graph clustering* stages of ``KGraph.fit``
(Figure 1 builds M independent graphs before the consensus step), and the
``methods x datasets x runs`` grid of a :class:`~repro.benchmark.runner.BenchmarkRunner`
campaign.  Both — plus graphoid extraction over clusters and the per-length
interpretability scores — dispatch through one abstraction:

:class:`ExecutionBackend`
    ``map_jobs(fn, jobs)`` applies ``fn`` to each job and returns one
    :class:`JobOutcome` per job, **in submission order**, with per-job error
    capture and per-job wall-clock durations.

Three backends ship today:

* :class:`SerialBackend` — the default; zero overhead, identical behaviour
  to the pre-parallel code path.
* :class:`ThreadBackend` — a thread pool; good for NumPy-heavy jobs whose
  kernels release the GIL, and requires no pickling.
* :class:`ProcessBackend` — a process pool with configurable ``chunk_size``;
  sidesteps the GIL, requires module-level job functions and picklable jobs.
* :class:`SharedMemoryBackend` — a process pool whose jobs ship large
  NumPy arrays through zero-copy POSIX shared memory (written once per
  fan-out, identity-deduplicated across jobs) instead of re-pickling the
  dataset per job, and ships large *result* arrays back through worker-
  written segments too; select with ``backend="shared"``.
* :class:`~repro.distributed.DistributedBackend` — fans out over a pool of
  ``graphint worker`` HTTP services; select with
  ``backend="distributed:HOST:PORT[,HOST:PORT...][@PLANE_DIR]"`` (see
  :mod:`repro.distributed`; outcomes travel through the JSON wire codec of
  :mod:`repro.parallel.wire`).

Every user-facing entry point threads the same two keywords down to
:func:`resolve_backend`::

    KGraph(n_clusters=3, n_jobs=4)                  # thread pool, 4 workers
    KGraph(n_clusters=3, backend="process")         # process pool, 1/CPU
    BenchmarkRunner([...], backend="thread", n_jobs=8)
    GraphintSession(dataset, n_jobs=4)

Determinism: jobs carry their own pre-spawned seeds/generators (see
:func:`repro.utils.rng.spawn_rng`), so for a fixed ``random_state`` the
labels, optimal length and benchmark measures are bit-identical across all
backends — parallelism changes wall-clock time, never results.

Fault tolerance: every backend accepts a :class:`RetryPolicy`
(``map_jobs(..., retry=...)`` or ``resolve_backend(..., retry=...)``) for
bounded retries with deterministic backoff, per-attempt timeouts and a
whole-fan-out deadline; the process backends recover killed workers by
rebuilding the pool and bisecting the implicated chunk until the poison
job is isolated; :class:`FallbackBackend`
(``resolve_backend(fallback=("shared", "process", "thread"))``) demotes to
the next backend when a pool's rebuild budget is exhausted, with
bit-identical results.  :class:`ChaosBackend` injects seeded faults
(raise/delay/hang/kill/drop-result) by :class:`ChaosPlan` to drive every
one of those paths deterministically in tests.

Extension points: subclass :class:`ExecutionBackend` and pass an instance as
``backend=`` to plug in future executors (asyncio, distributed schedulers,
GPU streams) without touching any call site.
"""

from repro.parallel.backends import (
    ExecutionBackend,
    FallbackBackend,
    JobOutcome,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    backend_scope,
    pickled_nbytes,
    resolve_backend,
)
from repro.parallel.chaos import (
    ChaosBackend,
    ChaosDroppedResult,
    ChaosError,
    ChaosPlan,
)
from repro.parallel.retry import (
    DEFAULT_MAX_POOL_REBUILDS,
    JobTimeoutError,
    RetryPolicy,
    WorkerCrashError,
    WorkerPoolExhausted,
)
from repro.parallel.shared import (
    SharedArrayPlan,
    SharedMemoryBackend,
    SharedResultPlan,
    publish_result_arrays,
    substitute_shared_arrays,
)
from repro.parallel.wire import RemoteJobError

__all__ = [
    "ChaosBackend",
    "ChaosDroppedResult",
    "ChaosError",
    "ChaosPlan",
    "DEFAULT_MAX_POOL_REBUILDS",
    "ExecutionBackend",
    "FallbackBackend",
    "JobOutcome",
    "JobTimeoutError",
    "ProcessBackend",
    "RemoteJobError",
    "RetryPolicy",
    "SerialBackend",
    "SharedArrayPlan",
    "SharedMemoryBackend",
    "SharedResultPlan",
    "ThreadBackend",
    "WorkerCrashError",
    "WorkerPoolExhausted",
    "backend_scope",
    "pickled_nbytes",
    "publish_result_arrays",
    "resolve_backend",
    "substitute_shared_arrays",
]
