"""Quickstart: cluster a dataset with k-Graph and inspect the result.

Run with::

    python examples/quickstart.py

The script generates a synthetic labelled dataset (cylinder-bell-funnel),
runs the full k-Graph pipeline, reports the clustering accuracy against the
ground truth, and prints the interpretability information the Graphint GUI
exposes (selected length, per-length scores, graphoid sizes).
"""

from __future__ import annotations

from repro import KGraph, generate_dataset
from repro.metrics import adjusted_rand_index, normalized_mutual_information


def main() -> None:
    # 1. A labelled dataset (3 classes of events at random onsets).
    dataset = generate_dataset("cylinder_bell_funnel", random_state=0)
    print(f"dataset: {dataset.name}  ({dataset.n_series} series x {dataset.length} points, "
          f"{dataset.n_classes} classes)")

    # 2. Fit k-Graph: graph embedding -> graph clustering -> consensus.
    model = KGraph(n_clusters=dataset.n_classes, n_lengths=4, random_state=0)
    labels = model.fit_predict(dataset.data)

    # 3. Accuracy against the ground truth.
    print(f"ARI : {adjusted_rand_index(dataset.labels, labels):.3f}")
    print(f"NMI : {normalized_mutual_information(dataset.labels, labels):.3f}")

    # 4. Interpretability: which subsequence length was selected, and why.
    print(f"\nselected subsequence length: {model.optimal_length_}")
    print("length   W_c      W_e      W_c*W_e")
    for score in model.length_scores_:
        marker = "  <-- selected" if score.length == model.optimal_length_ else ""
        print(f"{score.length:>6}   {score.consistency:.3f}    {score.interpretability:.3f}"
              f"    {score.combined:.3f}{marker}")

    # 5. Graphoids: the cluster-specific subgraphs the Graph frame colours.
    print("\nper-cluster graphoids (gamma = exclusivity threshold 0.5):")
    for cluster, graphoid in sorted(model.graphoids("gamma").items()):
        print(f"  cluster {cluster}: {graphoid.n_nodes} exclusive nodes, "
              f"{graphoid.n_edges} exclusive edges")

    graph = model.optimal_graph_
    print(f"\noptimal graph: {graph.n_nodes} nodes, {graph.n_edges} edges "
          f"(subsequence length {graph.length})")

    # 6. Parallel execution: the M per-length stages of the pipeline are
    #    independent, so on multi-core machines they can fan out over a
    #    thread pool (n_jobs=4) or a process pool (backend="process").
    #    Results are bit-identical to the serial fit for the same seed.
    parallel_model = KGraph(n_clusters=dataset.n_classes, n_lengths=4,
                            random_state=0, n_jobs=4)
    parallel_labels = parallel_model.fit_predict(dataset.data)
    assert (parallel_labels == labels).all()
    print(f"\nparallel fit (n_jobs=4) reproduced the serial labels exactly; "
          f"timings: { {k: round(v, 3) for k, v in parallel_model.result_.timings.items()} }")


if __name__ == "__main__":
    main()
