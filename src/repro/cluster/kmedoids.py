"""k-Medoids (PAM-style) clustering on arbitrary distance matrices.

Used as a baseline in the Benchmark frame with either Euclidean or SBD
distances (medoid-based clustering is a common alternative when centroids
are not meaningful, e.g. for warped series).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.base import BaseClusterer
from repro.exceptions import ValidationError
from repro.metrics.distances import pairwise_distances
from repro.utils.validation import check_array, check_positive_int, check_random_state


class KMedoids(BaseClusterer):
    """Partitioning Around Medoids with alternating assignment/update steps.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    metric:
        Distance used to build the pairwise matrix (``"euclidean"``, ``"sbd"``,
        ``"dtw"``) or ``"precomputed"`` when ``fit`` receives a distance matrix.
    max_iter:
        Maximum alternations.
    random_state:
        Seed or generator for the initial medoid choice.

    Attributes
    ----------
    medoid_indices_:
        Indices of the final medoids into the fitted data.
    labels_:
        Cluster assignment per sample.
    inertia_:
        Total distance of samples to their medoid.
    """

    def __init__(
        self,
        n_clusters: int = 3,
        *,
        metric: str = "euclidean",
        max_iter: int = 100,
        random_state=None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        self.metric = metric
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.random_state = random_state

        self.medoid_indices_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None

    def fit(self, data) -> "KMedoids":
        """Cluster ``data`` (feature matrix or, when metric='precomputed', distances)."""
        array = check_array(data, name="data", ndim=2, min_rows=1)
        if self.metric == "precomputed":
            if array.shape[0] != array.shape[1]:
                raise ValidationError("precomputed distance matrix must be square")
            distances = array
        else:
            distances = pairwise_distances(array, metric=self.metric)
        n = distances.shape[0]
        if self.n_clusters > n:
            raise ValidationError(
                f"n_clusters ({self.n_clusters}) cannot exceed n_samples ({n})"
            )
        rng = check_random_state(self.random_state)
        medoids = rng.choice(n, size=self.n_clusters, replace=False)

        labels = np.argmin(distances[:, medoids], axis=1)
        for _ in range(self.max_iter):
            new_medoids = medoids.copy()
            for j in range(self.n_clusters):
                members = np.flatnonzero(labels == j)
                if members.size == 0:
                    # Re-seed an empty cluster with the sample farthest from its medoid.
                    assigned = distances[np.arange(n), medoids[labels]]
                    new_medoids[j] = int(np.argmax(assigned))
                    continue
                within = distances[np.ix_(members, members)]
                new_medoids[j] = members[int(np.argmin(within.sum(axis=1)))]
            new_labels = np.argmin(distances[:, new_medoids], axis=1)
            if np.array_equal(new_medoids, medoids) and np.array_equal(new_labels, labels):
                break
            medoids, labels = new_medoids, new_labels

        self.medoid_indices_ = medoids
        self.labels_ = labels
        self.inertia_ = float(distances[np.arange(n), medoids[labels]].sum())
        return self
