"""Unit tests for the benchmark runner, aggregation and persistence."""

import numpy as np
import pytest

from repro.benchmark.aggregate import (
    boxplot_summary,
    filter_results,
    mean_rank_table,
    results_to_rows,
    summarize_by_method,
)
from repro.benchmark.runner import BenchmarkResult, BenchmarkRunner
from repro.benchmark.store import load_results, save_results
from repro.datasets.catalogue import DatasetCatalogue, DatasetSpec
from repro.datasets.synthetic import make_trend_classes, make_two_patterns
from repro.exceptions import BenchmarkError


def _tiny_catalogue() -> DatasetCatalogue:
    """Two very small datasets so benchmark tests stay fast."""
    catalogue = DatasetCatalogue()
    catalogue.register(
        DatasetSpec(
            name="tiny_trend",
            generator=lambda random_state=None, n_series=16, length=48, **kw: make_trend_classes(
                n_series=n_series, length=length, random_state=random_state
            ),
            dataset_type="synthetic-trend",
            n_series=16,
            length=48,
            n_classes=2,
        )
    )
    catalogue.register(
        DatasetSpec(
            name="tiny_patterns",
            generator=lambda random_state=None, n_series=16, length=64, **kw: make_two_patterns(
                n_series=n_series, length=length, random_state=random_state
            ),
            dataset_type="synthetic-shape",
            n_series=16,
            length=64,
            n_classes=4,
        )
    )
    return catalogue


@pytest.fixture(scope="module")
def campaign_results():
    runner = BenchmarkRunner(
        ["kmeans", "featts_like", "gmm"], catalogue=_tiny_catalogue(), random_state=0
    )
    return runner.run()


class TestRunner:
    def test_one_result_per_pair(self, campaign_results):
        assert len(campaign_results) == 3 * 2
        pairs = {(r.method, r.dataset) for r in campaign_results}
        assert len(pairs) == 6

    def test_measures_present_and_bounded(self, campaign_results):
        for result in campaign_results:
            assert not result.failed
            assert {"ari", "ri", "nmi", "ami"} <= set(result.measures)
            assert -1.0 <= result.measures["ari"] <= 1.0
            assert 0.0 <= result.measures["nmi"] <= 1.0
            assert result.runtime_seconds > 0

    def test_dataset_attributes_recorded(self, campaign_results):
        result = next(r for r in campaign_results if r.dataset == "tiny_patterns")
        assert result.n_classes == 4
        assert result.length == 64
        assert result.n_series == 16

    def test_progress_callback_invoked(self):
        calls = []
        runner = BenchmarkRunner(["kmeans"], catalogue=_tiny_catalogue(), random_state=0)
        runner.run(["tiny_trend"], progress=lambda m, d, r: calls.append((m, d)))
        assert calls == [("kmeans", "tiny_trend")]

    def test_failure_is_recorded_not_raised(self, monkeypatch):
        from repro.baselines import registry

        broken = registry.BaselineMethod(
            name="kmeans", family="raw", runner=lambda *a, **k: 1 / 0, description=""
        )
        monkeypatch.setitem(registry._REGISTRY, "kmeans", broken)
        runner = BenchmarkRunner(["kmeans"], catalogue=_tiny_catalogue(), random_state=0)
        results = runner.run(["tiny_trend"])
        assert results[0].failed
        assert "ZeroDivisionError" in results[0].error

    def test_multiple_runs_average(self):
        runner = BenchmarkRunner(
            ["kmeans"], catalogue=_tiny_catalogue(), n_runs=2, random_state=0
        )
        results = runner.run(["tiny_trend"])
        assert len(results) == 1
        assert not results[0].failed

    def test_unknown_method_rejected(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            BenchmarkRunner(["mystery_method"])

    def test_empty_methods_rejected(self):
        with pytest.raises(BenchmarkError):
            BenchmarkRunner([])


class TestAggregation:
    def test_rows_are_flat_dicts(self, campaign_results):
        rows = results_to_rows(campaign_results)
        assert len(rows) == len(campaign_results)
        assert all("ari" in row and "method" in row for row in rows)

    def test_filter_by_type(self, campaign_results):
        shape_only = filter_results(campaign_results, dataset_type="synthetic-shape")
        assert {r.dataset for r in shape_only} == {"tiny_patterns"}

    def test_filter_by_numeric_attributes(self, campaign_results):
        long_series = filter_results(campaign_results, min_length=60)
        assert all(r.length >= 60 for r in long_series)
        few_classes = filter_results(campaign_results, max_classes=2)
        assert all(r.n_classes <= 2 for r in few_classes)

    def test_filter_by_method(self, campaign_results):
        only = filter_results(campaign_results, methods=["kmeans"])
        assert {r.method for r in only} == {"kmeans"}

    def test_boxplot_summary_structure(self, campaign_results):
        summary = boxplot_summary(campaign_results, "ari")
        assert set(summary) == {"kmeans", "featts_like", "gmm"}
        for stats in summary.values():
            assert stats["min"] <= stats["q1"] <= stats["median"] <= stats["q3"] <= stats["max"]
            assert stats["n"] == 2

    def test_summarize_by_method_includes_runtime(self, campaign_results):
        summary = summarize_by_method(campaign_results)
        assert all("runtime_seconds" in values for values in summary.values())

    def test_mean_rank_table_properties(self, campaign_results):
        ranks = mean_rank_table(campaign_results, "ari")
        assert set(ranks) == {"kmeans", "featts_like", "gmm"}
        assert all(1.0 <= rank <= 3.0 for rank in ranks.values())
        # Average of mean ranks equals (n_methods + 1) / 2 when all methods ran everywhere.
        assert np.mean(list(ranks.values())) == pytest.approx(2.0)

    def test_unknown_measure_raises(self, campaign_results):
        with pytest.raises(BenchmarkError):
            boxplot_summary(campaign_results, "accuracy")


class TestPersistence:
    def test_json_roundtrip(self, campaign_results, tmp_path):
        path = save_results(campaign_results, tmp_path / "results.json")
        loaded = load_results(path)
        assert len(loaded) == len(campaign_results)
        original = {(r.method, r.dataset): r.measures["ari"] for r in campaign_results}
        for result in loaded:
            assert result.measures["ari"] == pytest.approx(original[(result.method, result.dataset)])

    def test_csv_export(self, campaign_results, tmp_path):
        path = save_results(campaign_results, tmp_path / "results.csv", fmt="csv")
        text = path.read_text()
        assert "method" in text.splitlines()[0]
        assert len(text.splitlines()) == len(campaign_results) + 1

    def test_invalid_format(self, campaign_results, tmp_path):
        with pytest.raises(BenchmarkError):
            save_results(campaign_results, tmp_path / "x.bin", fmt="parquet")

    def test_empty_results_rejected(self, tmp_path):
        with pytest.raises(BenchmarkError):
            save_results([], tmp_path / "x.json")

    def test_missing_file(self, tmp_path):
        with pytest.raises(BenchmarkError):
            load_results(tmp_path / "missing.json")

    def test_json_payload_is_versioned(self, campaign_results, tmp_path):
        import json

        from repro.benchmark.store import STORE_FORMAT, STORE_SCHEMA_VERSION

        path = save_results(campaign_results, tmp_path / "results.json")
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == STORE_SCHEMA_VERSION
        assert payload["format"] == STORE_FORMAT
        assert len(payload["results"]) == len(campaign_results)

    def test_legacy_bare_list_files_still_load(self, campaign_results, tmp_path):
        import json

        path = tmp_path / "legacy.json"
        path.write_text(json.dumps([result.to_dict() for result in campaign_results]))
        loaded = load_results(path)
        assert len(loaded) == len(campaign_results)

    def test_newer_schema_version_is_rejected(self, campaign_results, tmp_path):
        import json

        from repro.benchmark.store import STORE_SCHEMA_VERSION

        path = save_results(campaign_results, tmp_path / "results.json")
        payload = json.loads(path.read_text())
        payload["schema_version"] = STORE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(BenchmarkError, match="upgrade the library"):
            load_results(path)

    def test_envelope_without_results_list_is_rejected(self, tmp_path):
        import json

        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"schema_version": 1, "format": "benchmark-results"}))
        with pytest.raises(BenchmarkError, match="results"):
            load_results(path)

    def test_result_dict_roundtrip(self):
        result = BenchmarkResult(
            method="kmeans",
            family="raw",
            dataset="d",
            dataset_type="t",
            n_series=10,
            length=32,
            n_classes=2,
            measures={"ari": 0.5},
            runtime_seconds=0.1,
        )
        restored = BenchmarkResult.from_dict(result.to_dict())
        assert restored.method == "kmeans"
        assert restored.measures["ari"] == 0.5
        assert not restored.failed
