"""Dataset container used throughout the library.

A :class:`TimeSeriesDataset` bundles an equal-length univariate time series
collection with optional ground-truth labels and descriptive metadata (the
Benchmark frame of Graphint filters datasets by this metadata).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_labels, check_time_series_dataset


@dataclass(frozen=True)
class TimeSeriesDataset:
    """An immutable labelled collection of equal-length univariate time series.

    Attributes
    ----------
    data:
        Array of shape ``(n_series, length)``.
    labels:
        Optional ground-truth integer labels, shape ``(n_series,)``.
    name:
        Human-readable dataset name (used by the catalogue and the GUI).
    dataset_type:
        Free-form category such as ``"synthetic-shape"`` or ``"sensor"``;
        the Benchmark frame filters on it.
    metadata:
        Extra key/value annotations.
    """

    data: np.ndarray
    labels: Optional[np.ndarray] = None
    name: str = "unnamed"
    dataset_type: str = "synthetic"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        data = check_time_series_dataset(self.data, name="data", min_series=1, min_length=3)
        object.__setattr__(self, "data", data)
        if self.labels is not None:
            labels = check_labels(self.labels, n_samples=data.shape[0])
            object.__setattr__(self, "labels", labels)
        object.__setattr__(self, "metadata", dict(self.metadata))

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.data.shape[0])

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.data)

    def __getitem__(self, index) -> np.ndarray:
        return self.data[index]

    # ------------------------------------------------------------------ #
    # derived properties
    # ------------------------------------------------------------------ #
    @property
    def n_series(self) -> int:
        """Number of time series in the dataset."""
        return int(self.data.shape[0])

    @property
    def length(self) -> int:
        """Length (number of points) of each time series."""
        return int(self.data.shape[1])

    @property
    def n_classes(self) -> int:
        """Number of distinct ground-truth classes (0 when unlabelled)."""
        if self.labels is None:
            return 0
        return int(np.unique(self.labels).size)

    @property
    def has_labels(self) -> bool:
        """Whether ground-truth labels are available."""
        return self.labels is not None

    def default_cluster_count(self, fallback: int = 3) -> int:
        """Default ``k`` for estimators run on this dataset.

        The labelled class count when the dataset carries a usable ground
        truth (>= 2 classes), else ``fallback`` — the single defaulting
        rule shared by the CLI, the benchmark harness and the baselines.
        """
        return self.n_classes if self.n_classes >= 2 else int(fallback)

    def class_counts(self) -> Dict[int, int]:
        """Return a mapping from class label to number of series."""
        if self.labels is None:
            return {}
        values, counts = np.unique(self.labels, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def with_labels(self, labels) -> "TimeSeriesDataset":
        """Return a copy of the dataset with new ground-truth labels."""
        return replace(self, labels=check_labels(labels, n_samples=self.n_series))

    def subset(self, indices) -> "TimeSeriesDataset":
        """Return a new dataset restricted to ``indices`` (keeps metadata)."""
        indices = np.asarray(indices)
        if indices.dtype == bool:
            if indices.shape[0] != self.n_series:
                raise ValidationError("boolean mask length does not match dataset size")
            indices = np.flatnonzero(indices)
        if indices.size == 0:
            raise ValidationError("cannot build an empty dataset subset")
        data = self.data[indices]
        labels = self.labels[indices] if self.labels is not None else None
        return replace(self, data=data, labels=labels)

    def series_of_class(self, class_label: int) -> np.ndarray:
        """Return the stacked series belonging to ``class_label``."""
        if self.labels is None:
            raise ValidationError("dataset has no labels")
        mask = self.labels == class_label
        if not np.any(mask):
            raise ValidationError(f"no series with class label {class_label}")
        return self.data[mask]

    def summary(self) -> Dict[str, object]:
        """Return a JSON-serialisable description used by the GUI and catalogue."""
        return {
            "name": self.name,
            "dataset_type": self.dataset_type,
            "n_series": self.n_series,
            "length": self.length,
            "n_classes": self.n_classes,
            "class_counts": self.class_counts(),
            "metadata": dict(self.metadata),
        }

    def train_test_split(
        self, test_fraction: float = 0.3, random_state=None
    ) -> Tuple["TimeSeriesDataset", "TimeSeriesDataset"]:
        """Split the dataset into train/test parts, stratified when labelled."""
        from repro.utils.validation import check_probability, check_random_state

        test_fraction = check_probability(test_fraction, "test_fraction", inclusive=False)
        rng = check_random_state(random_state)
        n_test = max(1, int(round(self.n_series * test_fraction)))
        n_test = min(n_test, self.n_series - 1)

        if self.labels is not None:
            test_indices = []
            for label in np.unique(self.labels):
                members = np.flatnonzero(self.labels == label)
                permuted = rng.permutation(members)
                take = max(1, int(round(members.size * test_fraction)))
                take = min(take, members.size - 1) if members.size > 1 else 0
                test_indices.extend(permuted[:take].tolist())
            test_indices = np.asarray(sorted(set(test_indices)), dtype=int)
            if test_indices.size == 0:
                test_indices = rng.permutation(self.n_series)[:n_test]
        else:
            test_indices = rng.permutation(self.n_series)[:n_test]

        mask = np.zeros(self.n_series, dtype=bool)
        mask[test_indices] = True
        if mask.all() or not mask.any():
            raise ValidationError("train/test split produced an empty side")
        return self.subset(~mask), self.subset(mask)
