#!/usr/bin/env python
"""Pipeline-resume smoke check (CI).

Runs a tiny k-Graph fit through the stage pipeline with a disk checkpoint
cache, then

1. re-fits with identical parameters — every stage must replay from the
   cache and the results must be bit-identical;
2. re-fits with one changed parameter (``feature_mode``) — the upstream
   ``embed`` stage must be skipped while every downstream stage re-runs,
   and the partially replayed fit must be bit-identical to a cold
   reference fit of the changed configuration.

With ``--cache-budget BYTES`` a third phase runs the same fits through a
byte-budgeted :class:`~repro.pipeline.DiskStageCache`: churning several
configurations through a cache too small to hold them all must evict
checkpoints (visible in ``stats()``), never exceed the budget on disk,
and an evicted stage must degrade to a re-run with bit-identical results
— the economics counterpart of the replay invariants above.

Exit status: 0 when every invariant holds, 1 otherwise.  This is the
cheap, deterministic guard for the resumability contract of
``repro.pipeline`` (the full matrix lives in ``tests/test_pipeline.py``
and ``tests/test_cache_economics.py``).

Usage::

    PYTHONPATH=src python benchmarks/pipeline_resume_smoke.py
    PYTHONPATH=src python benchmarks/pipeline_resume_smoke.py \
        --cache-budget 65536 --cache-policy lru
"""

from __future__ import annotations

import argparse
import sys
import tempfile

import numpy as np

from repro.core.kgraph import KGraph
from repro.datasets.synthetic import make_cylinder_bell_funnel
from repro.pipeline import KGRAPH_STAGE_NAMES, DiskStageCache

ALL_STAGES = list(KGRAPH_STAGE_NAMES)


def _check(condition: bool, message: str, failures: list) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        failures.append(message)


def _budgeted_phase(dataset, budget: int, policy: str, failures: list) -> None:
    print(f"budgeted resume (--cache-budget {budget}, policy {policy})")
    with tempfile.TemporaryDirectory(prefix="kgraph-budget-cache-") as cache_dir:
        cache = DiskStageCache(cache_dir, budget_bytes=budget, policy=policy)
        params = dict(n_clusters=3, n_lengths=2, random_state=0)
        cold = KGraph(**params, stage_cache=cache).fit(dataset.data)
        _check(
            cache.total_bytes() <= budget,
            f"budget holds after the cold fit ({cache.total_bytes()} <= {budget})",
            failures,
        )
        # Churn differently-seeded fits through the cache: their
        # checkpoints compete for the same byte budget.
        for seed in (1, 2, 3):
            KGraph(**dict(params, random_state=seed), stage_cache=cache).fit(
                dataset.data
            )
            _check(
                cache.total_bytes() <= budget,
                f"budget holds after churn fit seed={seed} "
                f"({cache.total_bytes()} <= {budget})",
                failures,
            )
        stats = cache.stats()
        _check(
            stats["evictions"] > 0,
            f"the churn evicted checkpoints (evictions={stats['evictions']})",
            failures,
        )
        refit = KGraph(**params, stage_cache=cache).fit(dataset.data)
        _check(
            np.array_equal(refit.labels_, cold.labels_)
            and np.array_equal(
                refit.result_.consensus_matrix, cold.result_.consensus_matrix
            ),
            "re-fit after eviction churn is bit-identical to the cold fit "
            f"(cached={refit.pipeline_report_.cached}, "
            f"executed={refit.pipeline_report_.executed})",
            failures,
        )
        stats = cache.stats()
        print(
            f"  stats: entries={stats['entries']} total_bytes={stats['total_bytes']} "
            f"evictions={stats['evictions']} hits={stats['hits']} "
            f"misses={stats['misses']} stores={stats['stores']}"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cache-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="also exercise a byte-budgeted DiskStageCache under churn",
    )
    parser.add_argument(
        "--cache-policy",
        choices=("lru", "lfu"),
        default="lru",
        help="eviction policy for --cache-budget (default: lru)",
    )
    args = parser.parse_args(argv)
    dataset = make_cylinder_bell_funnel(
        n_series=15, length=48, noise=0.2, random_state=0
    )
    failures: list = []
    with tempfile.TemporaryDirectory(prefix="kgraph-stage-cache-") as cache_dir:
        params = dict(n_clusters=3, n_lengths=2, random_state=0)

        print("cold fit (populates the checkpoint cache)")
        cold = KGraph(**params, stage_cache=cache_dir).fit(dataset.data)
        _check(
            cold.pipeline_report_.executed == ALL_STAGES,
            f"every stage executed: {cold.pipeline_report_.executed}",
            failures,
        )

        print("identical re-fit (must replay every stage)")
        warm = KGraph(**params, stage_cache=cache_dir).fit(dataset.data)
        _check(
            warm.pipeline_report_.cached == ALL_STAGES,
            f"every stage replayed: {warm.pipeline_report_.cached}",
            failures,
        )
        _check(
            np.array_equal(warm.labels_, cold.labels_)
            and np.array_equal(
                warm.result_.consensus_matrix, cold.result_.consensus_matrix
            ),
            "replayed fit is bit-identical to the cold fit",
            failures,
        )

        print("one-parameter change (feature_mode: must skip only 'embed')")
        changed = dict(params, feature_mode="nodes")
        partial = KGraph(**changed, stage_cache=cache_dir).fit(dataset.data)
        _check(
            partial.pipeline_report_.cached == ["embed"],
            f"upstream embed skipped: cached={partial.pipeline_report_.cached}",
            failures,
        )
        _check(
            partial.pipeline_report_.executed == ALL_STAGES[1:],
            f"downstream stages re-ran: executed={partial.pipeline_report_.executed}",
            failures,
        )
        reference = KGraph(**changed).fit_reference(dataset.data)
        _check(
            np.array_equal(partial.labels_, reference.labels_)
            and np.array_equal(
                partial.result_.consensus_matrix,
                reference.result_.consensus_matrix,
            )
            and partial.result_.optimal_length == reference.result_.optimal_length,
            "partially replayed fit is bit-identical to a cold reference fit",
            failures,
        )

    if args.cache_budget is not None:
        _budgeted_phase(dataset, args.cache_budget, args.cache_policy, failures)

    if failures:
        print(f"\npipeline resume smoke FAILED ({len(failures)} check(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\npipeline resume smoke passed: upstream stages skip, results stay bit-identical.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
