"""Tests for the zero-copy shared-memory dataset plans (repro.parallel.shared)."""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.kgraph import KGraph
from repro.datasets import generate_dataset
from repro.exceptions import ValidationError
from repro.parallel import (
    ProcessBackend,
    SerialBackend,
    SharedArrayPlan,
    SharedMemoryBackend,
    SharedResultPlan,
    publish_result_arrays,
    resolve_backend,
    substitute_shared_arrays,
)
from repro.parallel import shared as shared_module
from repro.parallel.shared import _SharedArrayRef, _SharedResultRef


@dataclass(frozen=True)
class _ArrayJob:
    array: np.ndarray
    offset: float


def _job_sum(job: _ArrayJob) -> float:
    return float(job.array.sum() + job.offset)


def _mutate_job(job: _ArrayJob) -> float:
    job.array[0, 0] = -1.0
    return 0.0


class TestSharedArrayPlan:
    def test_share_roundtrip_is_equal_and_readonly(self):
        rng = np.random.default_rng(0)
        array = rng.normal(size=(64, 32))
        with SharedArrayPlan() as plan:
            ref = plan.share(array)
            assert isinstance(ref, _SharedArrayRef)
            view = pickle.loads(pickle.dumps(ref))
            assert np.array_equal(view, array)
            assert not view.flags.writeable

    def test_identity_deduplication(self):
        array = np.zeros((16, 16))
        other = np.ones((16, 16))
        with SharedArrayPlan() as plan:
            first = plan.share(array)
            second = plan.share(array)
            third = plan.share(other)
            assert first is second
            assert third is not first
            assert plan.n_segments == 2

    def test_reference_pickle_is_tiny(self):
        array = np.zeros((512, 512))
        with SharedArrayPlan() as plan:
            ref = plan.share(array)
            assert len(pickle.dumps(ref)) < 1024
            assert len(pickle.dumps(array)) > array.nbytes

    def test_close_is_idempotent(self):
        plan = SharedArrayPlan()
        plan.share(np.zeros(128))
        plan.close()
        plan.close()
        assert plan.n_segments == 0


class TestSubstitution:
    def test_dataclass_fields(self):
        job = _ArrayJob(array=np.zeros((32, 32)), offset=2.0)
        with SharedArrayPlan() as plan:
            replaced = substitute_shared_arrays(job, plan, min_bytes=0)
            assert isinstance(replaced.array, _SharedArrayRef)
            assert replaced.offset == 2.0
            assert isinstance(job.array, np.ndarray)  # original untouched

    def test_small_arrays_pass_through(self):
        job = _ArrayJob(array=np.zeros((2, 2)), offset=0.0)
        with SharedArrayPlan() as plan:
            replaced = substitute_shared_arrays(job, plan, min_bytes=1 << 20)
            assert replaced is job
            assert plan.n_segments == 0

    def test_containers(self):
        array = np.zeros(64)
        with SharedArrayPlan() as plan:
            as_dict = substitute_shared_arrays({"a": array, "b": 1}, plan, 0)
            as_tuple = substitute_shared_arrays((array, "x"), plan, 0)
            as_list = substitute_shared_arrays([array], plan, 0)
            assert isinstance(as_dict["a"], _SharedArrayRef)
            assert as_dict["b"] == 1
            assert isinstance(as_tuple[0], _SharedArrayRef)
            assert as_tuple[1] == "x"
            assert isinstance(as_list[0], _SharedArrayRef)
            # The same array in all three containers used one segment.
            assert plan.n_segments == 1

    def test_non_array_jobs_untouched(self):
        with SharedArrayPlan() as plan:
            assert substitute_shared_arrays("job", plan, 0) == "job"
            assert substitute_shared_arrays(123, plan, 0) == 123
            assert plan.n_segments == 0


class TestSharedMemoryBackend:
    def test_resolve_by_name(self):
        backend = resolve_backend("shared", 2)
        try:
            assert isinstance(backend, SharedMemoryBackend)
            assert isinstance(backend, ProcessBackend)
            assert backend.n_workers == 2
        finally:
            backend.close()
        with resolve_backend("shared_memory") as alias:
            assert isinstance(alias, SharedMemoryBackend)

    def test_invalid_min_share_bytes(self):
        with pytest.raises(ValidationError):
            SharedMemoryBackend(min_share_bytes=-1)

    def test_results_match_serial(self):
        rng = np.random.default_rng(1)
        shared_array = rng.normal(size=(128, 64))
        jobs = [_ArrayJob(array=shared_array, offset=float(i)) for i in range(6)]
        expected = [outcome.value for outcome in SerialBackend().map_jobs(_job_sum, jobs)]
        with SharedMemoryBackend(2, min_share_bytes=0) as backend:
            outcomes = backend.map_jobs(_job_sum, jobs)
        assert [outcome.value for outcome in outcomes] == expected
        assert all(outcome.ok for outcome in outcomes)

    def test_worker_views_are_readonly(self):
        jobs = [_ArrayJob(array=np.zeros((64, 64)), offset=0.0)]
        with SharedMemoryBackend(1, min_share_bytes=0) as backend:
            outcomes = backend.map_jobs(_mutate_job, jobs)
        assert not outcomes[0].ok
        assert "read-only" in outcomes[0].error

    def test_empty_jobs(self):
        with SharedMemoryBackend(1) as backend:
            assert backend.map_jobs(_job_sum, []) == []

    def test_fallback_when_sharing_fails(self, monkeypatch):
        # If segment creation fails the backend must degrade to plain
        # pickling, not fail the fan-out.
        def broken_share(self, array):
            raise OSError("no shared memory")

        monkeypatch.setattr(SharedArrayPlan, "share", broken_share)
        jobs = [_ArrayJob(array=np.ones((64, 64)), offset=0.0)]
        with SharedMemoryBackend(1, min_share_bytes=0) as backend:
            outcomes = backend.map_jobs(_job_sum, jobs)
        assert outcomes[0].ok
        assert outcomes[0].value == 64 * 64


@dataclass(frozen=True)
class _ResultJob:
    rows: int
    value: float


def _job_make_array(job: _ResultJob) -> np.ndarray:
    return np.full((job.rows, 64), job.value)


def _job_make_mixed(job: _ResultJob):
    return {"matrix": np.full((job.rows, 64), job.value), "tag": int(job.value)}


def _job_maybe_fail(job: _ResultJob) -> np.ndarray:
    if job.value < 0:
        raise RuntimeError("boom")
    return np.full((job.rows, 64), job.value)


class TestPublishResultArrays:
    def test_round_trip_through_plan(self):
        value = {"matrix": np.arange(4096, dtype=float).reshape(64, 64), "tag": 7}
        published = publish_result_arrays(value, min_bytes=0)
        assert isinstance(published["matrix"], _SharedResultRef)
        assert published["tag"] == 7
        plan = SharedResultPlan()
        resolved = plan.resolve(pickle.loads(pickle.dumps(published)))
        assert np.array_equal(resolved["matrix"], value["matrix"])
        assert resolved["matrix"].flags.writeable  # copy-on-detach: a real copy
        assert plan.segments_resolved == 1
        assert plan.bytes_resolved == value["matrix"].nbytes

    def test_ref_pickle_is_tiny_and_does_not_attach(self):
        array = np.zeros((512, 512))
        published = publish_result_arrays(array, min_bytes=0)
        payload = pickle.dumps(published)
        assert len(payload) < 1024
        ref = pickle.loads(payload)
        # Unpickling alone must not touch shared memory: resolution is the
        # coordinator's explicit, accounted step.
        assert isinstance(ref, _SharedResultRef)
        SharedResultPlan().resolve(ref)  # release the segment

    def test_small_results_pass_through(self):
        small = np.zeros(4)
        assert publish_result_arrays(small, min_bytes=1 << 20) is small
        assert publish_result_arrays("text", min_bytes=0) == "text"

    def test_publish_failure_falls_back_to_original(self, monkeypatch):
        def broken(nbytes):
            raise OSError("no shm")

        monkeypatch.setattr(shared_module, "_create_segment", broken)
        value = {"a": np.zeros((64, 64)), "b": np.ones((64, 64))}
        published = publish_result_arrays(value, min_bytes=0)
        assert published is value  # untouched: pickling fallback

    def test_partial_publish_failure_unlinks_created_segments(self, monkeypatch):
        real = shared_module._create_segment
        calls = []

        def flaky(nbytes):
            if calls:
                raise OSError("no shm for the second array")
            segment = real(nbytes)
            calls.append(segment.name)
            return segment

        monkeypatch.setattr(shared_module, "_create_segment", flaky)
        value = [np.zeros((64, 64)), np.ones((64, 64))]
        published = publish_result_arrays(value, min_bytes=0)
        assert published is value
        # The first segment was rolled back: attaching to it must fail.
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=calls[0])


class TestSharedResultReturn:
    def test_large_results_return_through_shared_memory(self):
        jobs = [_ResultJob(rows=256, value=float(i)) for i in range(4)]
        expected = [_job_make_array(job) for job in jobs]
        with SharedMemoryBackend(2, min_result_bytes=0) as backend:
            outcomes = backend.map_jobs(_job_make_array, jobs)
            assert backend.result_segments == 4
            assert backend.result_bytes == sum(a.nbytes for a in expected)
        for outcome, reference in zip(outcomes, expected):
            assert outcome.ok
            assert isinstance(outcome.value, np.ndarray)
            assert np.array_equal(outcome.value, reference)

    def test_on_result_sees_resolved_arrays(self):
        jobs = [_ResultJob(rows=128, value=float(i)) for i in range(3)]
        seen = []
        with SharedMemoryBackend(2, min_result_bytes=0) as backend:
            backend.map_jobs(
                _job_make_mixed, jobs, on_result=lambda o: seen.append(o.value)
            )
        assert len(seen) == 3
        for value in seen:
            assert isinstance(value["matrix"], np.ndarray)
            assert value["matrix"].shape == (128, 64)

    def test_share_results_disabled_keeps_plain_pickling(self):
        jobs = [_ResultJob(rows=128, value=1.0)]
        with SharedMemoryBackend(1, share_results=False) as backend:
            outcomes = backend.map_jobs(_job_make_array, jobs)
            assert backend.result_segments == 0
            assert backend.result_bytes == 0
        assert np.array_equal(outcomes[0].value, np.full((128, 64), 1.0))

    def test_failing_jobs_leak_no_segments(self):
        # The failing job's outcome carries the error; the successful jobs'
        # segments are all resolved and unlinked (asserted by the
        # resource-tracker scan in test_no_resource_tracker_leak_warnings).
        jobs = [
            _ResultJob(rows=256, value=float(i) if i != 1 else -1.0)
            for i in range(3)
        ]
        with SharedMemoryBackend(2, min_result_bytes=0) as backend:
            outcomes = backend.map_jobs(_job_maybe_fail, jobs)
        assert not outcomes[1].ok
        assert "boom" in outcomes[1].error
        assert outcomes[0].ok and outcomes[2].ok

    def test_invalid_min_result_bytes(self):
        with pytest.raises(ValidationError):
            SharedMemoryBackend(min_result_bytes=-1)


class TestAttachCacheEviction:
    def test_eviction_survives_broken_close(self):
        """Regression: a segment whose close() raises (not BufferError) must
        be dropped from the worker attach cache, not pin it forever."""

        class _Broken:
            def close(self):
                raise RuntimeError("cannot close")

        class _Fine:
            closed = False

            def close(self):
                self.closed = True

        saved = OrderedDict(shared_module._ATTACHED)
        shared_module._ATTACHED.clear()
        try:
            fine = _Fine()
            shared_module._ATTACHED["a"] = _Broken()
            shared_module._ATTACHED["b"] = fine
            shared_module._ATTACHED["c"] = object.__new__(object)
            shared_module._ATTACHED["d"] = object.__new__(object)
            shared_module._ATTACHED["e"] = object.__new__(object)
            shared_module._prune_attached()
            assert len(shared_module._ATTACHED) <= shared_module._ATTACH_CACHE_LIMIT
            assert "a" not in shared_module._ATTACHED  # dropped, not retried
            assert fine.closed
        finally:
            shared_module._ATTACHED.clear()
            shared_module._ATTACHED.update(saved)

    def test_exported_buffer_keeps_entry_alive(self):
        class _Exported:
            def close(self):
                raise BufferError("view still exported")

        saved = OrderedDict(shared_module._ATTACHED)
        shared_module._ATTACHED.clear()
        try:
            shared_module._ATTACHED["live"] = _Exported()
            shared_module._ATTACHED["x"] = object.__new__(object)
            shared_module._ATTACHED["y"] = object.__new__(object)
            shared_module._prune_attached()
            # The exported segment stays cached for reuse instead of being
            # force-closed under a live view.
            assert "live" in shared_module._ATTACHED
        finally:
            shared_module._ATTACHED.clear()
            shared_module._ATTACHED.update(saved)

    def test_no_resource_tracker_leak_warnings(self):
        """End-to-end leak check: a fan-out with large shared results (and a
        failing job) must exit without the multiprocessing resource tracker
        reporting leaked shared_memory objects."""
        script = (
            "import numpy as np\n"
            "from repro.parallel import SharedMemoryBackend\n"
            "from tests.test_shared_memory import _ResultJob, _job_maybe_fail\n"
            "jobs = [_ResultJob(rows=256, value=float(i) if i % 3 else -1.0)\n"
            "        for i in range(6)]\n"
            "with SharedMemoryBackend(2, min_share_bytes=0, min_result_bytes=0) as b:\n"
            "    outcomes = b.map_jobs(_job_maybe_fail, jobs)\n"
            "print('OK', sum(1 for o in outcomes if o.ok))\n"
        )
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([str(root / "src"), str(root)])
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=300,
            cwd=str(root),
            env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "OK 4" in result.stdout
        assert "leaked shared_memory" not in result.stderr


class TestKGraphIntegration:
    def test_fit_is_bit_identical_to_serial(self):
        dataset = generate_dataset("cylinder_bell_funnel", random_state=0)
        serial = KGraph(n_clusters=3, n_lengths=2, random_state=0).fit(dataset.data)
        with SharedMemoryBackend(2, min_share_bytes=0) as backend:
            shared = KGraph(
                n_clusters=3, n_lengths=2, random_state=0, backend=backend
            ).fit(dataset.data)
        assert np.array_equal(serial.labels_, shared.labels_)
        assert serial.optimal_length_ == shared.optimal_length_
        for length, graph in serial.result_.graphs.items():
            assert graph.to_payload() == shared.result_.graphs[length].to_payload()
