"""The k-Graph method of Figure 1, re-expressed as pipeline stages.

The monolithic ``KGraph._fit_reference`` runs embedding, clustering,
consensus, length selection and graphoid extraction in one sweep; this
module decomposes the exact same computation into five cacheable
:class:`~repro.pipeline.Stage` objects:

``embed -> graph_cluster -> consensus -> length_selection -> interpretability``

Stage boundaries were chosen along the paper's own figure, but also along
the *parameter dependency* lines that make checkpoints useful: ``embed``
depends only on the data, the length grid, the stride and the sector count,
so sweeping ``feature_mode``, ``n_clusters`` or the graphoid thresholds
replays the embedding checkpoints instead of rebuilding M graphs.

Determinism contract (bit-identity with the reference path): the driver
pre-spawns one child generator per length plus one for the consensus step,
exactly as the monolith does.  :class:`GraphEmbedding` never draws from its
generator, so the per-length streams arrive at ``graph_cluster`` in the
same pristine state the monolith's fused per-length job hands to
``cluster_graph`` — the ``embed`` stage still threads the post-embedding
generators through the context (``cluster_rngs``) so the contract survives
an embedding that *does* start drawing randomness.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.api.config import KGraphConfig
from repro.core.consensus import consensus_clustering
from repro.core.graph_clustering import GraphPartition, cluster_graph
from repro.core.interpretability import (
    interpretability_scores,
    select_optimal_length,
)
from repro.graph.embedding import GraphEmbedding
from repro.graph.graphoid import (
    Graphoid,
    extract_gamma_graphoid,
    extract_lambda_graphoid,
)
from repro.graph.structure import TimeSeriesGraph
from repro.pipeline.runner import Pipeline
from repro.pipeline.stage import PipelineContext, Stage
from repro.utils.timing import Stopwatch

#: Seed values the k-Graph driver must place in the context before running.
KGRAPH_SEED_INPUTS: Tuple[str, ...] = (
    "array",
    "lengths",
    "per_length_rngs",
    "consensus_rng",
)


def kgraph_pipeline_config(
    *,
    n_clusters: int,
    stride: int,
    n_sectors: int,
    feature_mode: str,
    lambda_threshold: float,
    gamma_threshold: float,
) -> Dict[str, object]:
    """The flat config mapping the k-Graph stages draw their keys from.

    A convenience wrapper over :meth:`KGraphConfig.stage_config` — the
    parameters are validated by the typed config, so a caller building the
    mapping by hand gets exactly the checks (and error messages) the
    estimator constructor applies.
    """
    return KGraphConfig(
        n_clusters=n_clusters,
        stride=stride,
        n_sectors=n_sectors,
        feature_mode=feature_mode,
        lambda_threshold=lambda_threshold,
        gamma_threshold=gamma_threshold,
    ).stage_config()


# --------------------------------------------------------------------------- #
# picklable per-length jobs (dispatched through ExecutionBackend)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _EmbedJob:
    """One per-length graph-embedding job (picklable; array is shareable)."""

    length: int
    array: np.ndarray
    stride: int
    n_sectors: int
    rng: np.random.Generator


@dataclass
class _EmbedFit:
    """What one embedding job sends back: the graph plus the threaded rng."""

    length: int
    graph: TimeSeriesGraph
    rng: np.random.Generator
    timings: Dict[str, float]
    counts: Dict[str, int]


def _embed_one_length(job: _EmbedJob) -> _EmbedFit:
    """Build the transition graph G_ℓ for one length (worker-side)."""
    watch = Stopwatch()
    with watch.section("graph_embedding"):
        embedding = GraphEmbedding(
            job.length,
            stride=job.stride,
            n_sectors=job.n_sectors,
            random_state=job.rng,
        )
        graph = embedding.fit(job.array)
    return _EmbedFit(
        length=job.length,
        graph=graph,
        rng=job.rng,
        timings=watch.totals(),
        counts=watch.counts(),
    )


@dataclass(frozen=True)
class _ClusterJob:
    """One per-length graph-clustering job (picklable)."""

    length: int
    graph: TimeSeriesGraph
    n_clusters: int
    feature_mode: str
    rng: np.random.Generator


@dataclass
class _ClusterFit:
    """What one clustering job sends back."""

    length: int
    partition: GraphPartition
    timings: Dict[str, float]
    counts: Dict[str, int]


def _cluster_one_graph(job: _ClusterJob) -> _ClusterFit:
    """Cluster one graph's node/edge features into a partition L_ℓ."""
    watch = Stopwatch()
    with watch.section("graph_clustering"):
        partition = cluster_graph(
            job.graph,
            job.n_clusters,
            feature_mode=job.feature_mode,
            random_state=job.rng,
        )
    return _ClusterFit(
        length=job.length,
        partition=partition,
        timings=watch.totals(),
        counts=watch.counts(),
    )


@dataclass(frozen=True)
class _FusedLengthJob:
    """One per-length embed→cluster job for the fused dispatch path."""

    length: int
    array: np.ndarray
    stride: int
    n_sectors: int
    feature_mode: str
    n_clusters: int
    rng: np.random.Generator


@dataclass
class _FusedLengthFit:
    """What one fused job sends back: both stages' per-length outputs.

    ``post_embed_rng`` is the generator snapshotted *between* the two
    stages — it is what the unfused ``embed`` stage would have emitted as
    this length's ``cluster_rngs`` entry, so the ``graph_cluster`` cache
    key (which fingerprints those generators) is identical either way.
    """

    length: int
    graph: TimeSeriesGraph
    post_embed_rng: np.random.Generator
    partition: GraphPartition
    timings: Dict[str, float]
    counts: Dict[str, int]


def _embed_and_cluster_one_length(job: _FusedLengthJob) -> _FusedLengthFit:
    """Worker-side fused stage pair: embed, snapshot the rng, cluster.

    One process round-trip instead of two — the intermediate
    :class:`TimeSeriesGraph` never crosses the boundary as a *job* again
    (it still travels back once, as an output).  Randomness consumption is
    exactly the unfused sequence: embedding sees the pristine stream,
    clustering continues the same stream, and the boundary snapshot
    preserves what the embed checkpoint must record.
    """
    watch = Stopwatch()
    with watch.section("graph_embedding"):
        embedding = GraphEmbedding(
            job.length,
            stride=job.stride,
            n_sectors=job.n_sectors,
            random_state=job.rng,
        )
        graph = embedding.fit(job.array)
    post_embed_rng = copy.deepcopy(job.rng)
    with watch.section("graph_clustering"):
        partition = cluster_graph(
            graph,
            job.n_clusters,
            feature_mode=job.feature_mode,
            random_state=job.rng,
        )
    return _FusedLengthFit(
        length=job.length,
        graph=graph,
        post_embed_rng=post_embed_rng,
        partition=partition,
        timings=watch.totals(),
        counts=watch.counts(),
    )


@dataclass(frozen=True)
class _GraphoidJob:
    """Picklable payload for extracting one cluster's graphoids."""

    graph: TimeSeriesGraph
    labels: np.ndarray
    cluster: int
    lambda_threshold: float
    gamma_threshold: float


def _extract_cluster_graphoids(job: _GraphoidJob) -> Tuple[int, Graphoid, Graphoid]:
    """Extract the λ- and γ-graphoid of one cluster (deterministic)."""
    lam = extract_lambda_graphoid(
        job.graph, job.labels, job.cluster, job.lambda_threshold
    )
    gam = extract_gamma_graphoid(
        job.graph, job.labels, job.cluster, job.gamma_threshold
    )
    return job.cluster, lam, gam


# --------------------------------------------------------------------------- #
# stages
# --------------------------------------------------------------------------- #
class EmbedStage(Stage):
    """Graph Embedding — one :class:`TimeSeriesGraph` per candidate length."""

    name = "embed"
    inputs = ("array", "lengths", "per_length_rngs")
    outputs = ("graphs", "cluster_rngs")
    # Derived from the fields KGraphConfig tags with this stage, so the
    # cache-key inputs and the typed config can never drift apart.
    config_keys = KGraphConfig.stage_config_keys("embed")
    #: embed→graph_cluster is the fan-out pair worth fusing: both iterate
    #: the same per-length jobs, and fusing saves shipping M graphs out to
    #: the workers a second time.
    fusable_with = "graph_cluster"

    def run(self, ctx: PipelineContext) -> Mapping[str, object]:
        array = ctx.require("array")
        lengths = ctx.require("lengths")
        rngs = ctx.require("per_length_rngs")
        jobs = [
            _EmbedJob(
                length=int(length),
                array=array,
                stride=int(ctx.config["stride"]),
                n_sectors=int(ctx.config["n_sectors"]),
                rng=rng,
            )
            for length, rng in zip(lengths, rngs)
        ]
        graphs: Dict[int, TimeSeriesGraph] = {}
        cluster_rngs: List[np.random.Generator] = []
        for outcome in ctx.dispatch(self.name, _embed_one_length, jobs):
            fitted: _EmbedFit = outcome.unwrap()
            graphs[fitted.length] = fitted.graph
            cluster_rngs.append(fitted.rng)
            ctx.watch.merge(fitted.timings, fitted.counts)
        return {"graphs": graphs, "cluster_rngs": cluster_rngs}

    def run_fused(
        self, next_stage: Stage, ctx: PipelineContext
    ) -> Tuple[Mapping[str, object], Mapping[str, object]]:
        """Embed and cluster every length in one ``map_jobs`` round-trip.

        The per-length graph is built and clustered inside the same worker,
        so it crosses the process boundary once (as a result) instead of
        twice (result, then job again).  Outputs are bit-identical to the
        unfused pair: the fused job consumes the same generator stream and
        snapshots it at the stage boundary (see :class:`_FusedLengthFit`).
        """
        array = ctx.require("array")
        lengths = ctx.require("lengths")
        rngs = ctx.require("per_length_rngs")
        jobs = [
            _FusedLengthJob(
                length=int(length),
                array=array,
                stride=int(ctx.config["stride"]),
                n_sectors=int(ctx.config["n_sectors"]),
                feature_mode=str(ctx.config["feature_mode"]),
                n_clusters=int(ctx.config["n_clusters"]),
                rng=rng,
            )
            for length, rng in zip(lengths, rngs)
        ]
        graphs: Dict[int, TimeSeriesGraph] = {}
        cluster_rngs: List[np.random.Generator] = []
        partitions: List[GraphPartition] = []
        for outcome in ctx.dispatch(self.name, _embed_and_cluster_one_length, jobs):
            fitted: _FusedLengthFit = outcome.unwrap()
            graphs[fitted.length] = fitted.graph
            cluster_rngs.append(fitted.post_embed_rng)
            partitions.append(fitted.partition)
            ctx.watch.merge(fitted.timings, fitted.counts)
        return (
            {"graphs": graphs, "cluster_rngs": cluster_rngs},
            {"partitions": partitions},
        )


class GraphClusterStage(Stage):
    """Graph Clustering — one partition L_ℓ per graph, via k-Means."""

    name = "graph_cluster"
    inputs = ("graphs", "cluster_rngs")
    outputs = ("partitions",)
    config_keys = KGraphConfig.stage_config_keys("graph_cluster")

    def run(self, ctx: PipelineContext) -> Mapping[str, object]:
        graphs = ctx.require("graphs")
        rngs = ctx.require("cluster_rngs")
        jobs = [
            _ClusterJob(
                length=int(length),
                graph=graph,
                n_clusters=int(ctx.config["n_clusters"]),
                feature_mode=str(ctx.config["feature_mode"]),
                rng=rng,
            )
            for (length, graph), rng in zip(graphs.items(), rngs)
        ]
        partitions: List[GraphPartition] = []
        for outcome in ctx.dispatch(self.name, _cluster_one_graph, jobs):
            fitted: _ClusterFit = outcome.unwrap()
            partitions.append(fitted.partition)
            ctx.watch.merge(fitted.timings, fitted.counts)
        return {"partitions": partitions}


class ConsensusStage(Stage):
    """Consensus Clustering — co-association matrix + spectral step."""

    name = "consensus"
    inputs = ("partitions", "consensus_rng")
    outputs = ("labels", "consensus_matrix")
    config_keys = KGraphConfig.stage_config_keys("consensus")

    def run(self, ctx: PipelineContext) -> Mapping[str, object]:
        partitions = ctx.require("partitions")
        with ctx.watch.section("consensus_clustering"):
            labels, consensus = consensus_clustering(
                [partition.labels for partition in partitions],
                int(ctx.config["n_clusters"]),
                random_state=ctx.require("consensus_rng"),
            )
        return {"labels": labels, "consensus_matrix": consensus}


class LengthSelectionStage(Stage):
    """Length selection — W_c(ℓ), W_e(ℓ) scores and the optimal length ¯ℓ."""

    name = "length_selection"
    inputs = ("graphs", "partitions", "labels")
    outputs = ("length_scores", "optimal_length")
    config_keys = KGraphConfig.stage_config_keys("length_selection")

    def run(self, ctx: PipelineContext) -> Mapping[str, object]:
        with ctx.watch.section("length_selection"):
            scores = interpretability_scores(
                ctx.require("graphs"),
                ctx.require("partitions"),
                ctx.require("labels"),
                backend=ctx.backend_for(self.name),
            )
            optimal_length = select_optimal_length(scores)
        return {"length_scores": scores, "optimal_length": optimal_length}


class InterpretabilityStage(Stage):
    """Interpretability — λ/γ graphoid extraction on the selected graph."""

    name = "interpretability"
    inputs = ("graphs", "labels", "optimal_length")
    outputs = ("lambda_graphoids", "gamma_graphoids")
    config_keys = KGraphConfig.stage_config_keys("interpretability")

    def run(self, ctx: PipelineContext) -> Mapping[str, object]:
        graphs = ctx.require("graphs")
        labels = ctx.require("labels")
        optimal_graph = graphs[ctx.require("optimal_length")]
        with ctx.watch.section("graphoid_extraction"):
            clusters = [int(cluster) for cluster in np.unique(labels)]
            jobs = [
                _GraphoidJob(
                    graph=optimal_graph,
                    labels=labels,
                    cluster=cluster,
                    lambda_threshold=float(ctx.config["lambda_threshold"]),
                    gamma_threshold=float(ctx.config["gamma_threshold"]),
                )
                for cluster in clusters
            ]
            lambda_graphoids: Dict[int, Graphoid] = {}
            gamma_graphoids: Dict[int, Graphoid] = {}
            for outcome in ctx.dispatch(self.name, _extract_cluster_graphoids, jobs):
                cluster, lam, gam = outcome.unwrap()
                lambda_graphoids[cluster] = lam
                gamma_graphoids[cluster] = gam
        return {
            "lambda_graphoids": lambda_graphoids,
            "gamma_graphoids": gamma_graphoids,
        }


#: Stage names in execution order — the CLI validates ``--stage-backend``
#: keys against this tuple.
KGRAPH_STAGE_NAMES: Tuple[str, ...] = (
    EmbedStage.name,
    GraphClusterStage.name,
    ConsensusStage.name,
    LengthSelectionStage.name,
    InterpretabilityStage.name,
)


def build_kgraph_pipeline() -> Pipeline:
    """The canonical five-stage k-Graph pipeline (fresh stage instances)."""
    return Pipeline(
        [
            EmbedStage(),
            GraphClusterStage(),
            ConsensusStage(),
            LengthSelectionStage(),
            InterpretabilityStage(),
        ],
        seed_inputs=KGRAPH_SEED_INPUTS,
    )


# Register this module's fan-out job functions for distributed dispatch:
# workers resolve them by name, so a `--backend distributed:...` pipeline
# run needs no side-channel code shipping.
from repro.distributed.registry import register_worker_function  # noqa: E402

register_worker_function(_embed_one_length)
register_worker_function(_cluster_one_graph)
register_worker_function(_embed_and_cluster_one_length)
register_worker_function(_extract_cluster_graphoids)
