"""Graph substrate for k-Graph.

* :mod:`repro.graph.structure` — the directed, attributed transition graph
  produced by the embedding step (nodes = recurring subsequence patterns,
  edges = observed transitions), plus conversion to networkx.
* :mod:`repro.graph.embedding` — the Graph Embedding step of the pipeline
  (subsequence extraction, PCA projection, radial-scan + KDE node extraction,
  edge construction).
* :mod:`repro.graph.graphoid` — node/edge representativity and exclusivity
  and the λ/γ-Graphoid extraction used by the Interpretability step.
* :mod:`repro.graph.layout` — 2-D layouts for rendering the graph in the
  Graph frame.
"""

from repro.graph.structure import TimeSeriesGraph
from repro.graph.embedding import GraphEmbedding, build_graph
from repro.graph.graphoid import (
    Graphoid,
    edge_exclusivity,
    edge_representativity,
    extract_gamma_graphoid,
    extract_graphoid,
    extract_lambda_graphoid,
    node_exclusivity,
    node_representativity,
)
from repro.graph.layout import circular_layout, force_directed_layout, pca_layout

__all__ = [
    "GraphEmbedding",
    "Graphoid",
    "TimeSeriesGraph",
    "build_graph",
    "circular_layout",
    "edge_exclusivity",
    "edge_representativity",
    "extract_gamma_graphoid",
    "extract_graphoid",
    "extract_lambda_graphoid",
    "force_directed_layout",
    "node_exclusivity",
    "node_representativity",
    "pca_layout",
]
