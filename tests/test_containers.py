"""Unit tests for the TimeSeriesDataset container."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.containers import TimeSeriesDataset


@pytest.fixture()
def dataset() -> TimeSeriesDataset:
    data = np.arange(40, dtype=float).reshape(8, 5)
    labels = [0, 0, 1, 1, 2, 2, 0, 1]
    return TimeSeriesDataset(data=data, labels=labels, name="toy", dataset_type="unit-test")


class TestConstruction:
    def test_shape_properties(self, dataset):
        assert dataset.n_series == 8
        assert dataset.length == 5
        assert dataset.n_classes == 3
        assert dataset.has_labels

    def test_unlabelled(self):
        unlabelled = TimeSeriesDataset(data=np.zeros((3, 6)))
        assert unlabelled.n_classes == 0
        assert not unlabelled.has_labels

    def test_label_length_mismatch(self):
        with pytest.raises(ValidationError):
            TimeSeriesDataset(data=np.zeros((3, 6)), labels=[0, 1])

    def test_too_short_series_rejected(self):
        with pytest.raises(ValidationError):
            TimeSeriesDataset(data=np.zeros((3, 2)))

    def test_len_iter_getitem(self, dataset):
        assert len(dataset) == 8
        assert len(list(iter(dataset))) == 8
        assert np.array_equal(dataset[0], dataset.data[0])


class TestClassAccessors:
    def test_class_counts(self, dataset):
        assert dataset.class_counts() == {0: 3, 1: 3, 2: 2}

    def test_series_of_class(self, dataset):
        block = dataset.series_of_class(2)
        assert block.shape == (2, 5)

    def test_series_of_missing_class(self, dataset):
        with pytest.raises(ValidationError):
            dataset.series_of_class(9)

    def test_series_of_class_requires_labels(self):
        unlabelled = TimeSeriesDataset(data=np.zeros((3, 6)))
        with pytest.raises(ValidationError):
            unlabelled.series_of_class(0)


class TestTransformations:
    def test_with_labels(self, dataset):
        relabelled = dataset.with_labels([1] * 8)
        assert relabelled.n_classes == 1
        assert dataset.n_classes == 3  # original untouched

    def test_subset_by_indices(self, dataset):
        subset = dataset.subset([0, 2, 4])
        assert subset.n_series == 3
        assert subset.labels.tolist() == [0, 1, 2]

    def test_subset_by_mask(self, dataset):
        mask = dataset.labels == 0
        subset = dataset.subset(mask)
        assert subset.n_series == 3

    def test_subset_empty_rejected(self, dataset):
        with pytest.raises(ValidationError):
            dataset.subset(np.zeros(8, dtype=bool))

    def test_subset_mask_length_mismatch(self, dataset):
        with pytest.raises(ValidationError):
            dataset.subset(np.zeros(5, dtype=bool))

    def test_summary_is_serialisable(self, dataset):
        import json

        text = json.dumps(dataset.summary())
        assert "toy" in text


class TestTrainTestSplit:
    def test_split_sizes(self, dataset):
        train, test = dataset.train_test_split(test_fraction=0.25, random_state=0)
        assert train.n_series + test.n_series == dataset.n_series
        assert test.n_series >= 1
        assert train.n_series >= 1

    def test_split_stratified_keeps_classes(self, dataset):
        train, test = dataset.train_test_split(test_fraction=0.3, random_state=0)
        assert set(np.unique(train.labels)) == {0, 1, 2}

    def test_split_deterministic(self, dataset):
        first = dataset.train_test_split(test_fraction=0.3, random_state=5)
        second = dataset.train_test_split(test_fraction=0.3, random_state=5)
        assert np.array_equal(first[1].data, second[1].data)

    def test_invalid_fraction(self, dataset):
        with pytest.raises(ValidationError):
            dataset.train_test_split(test_fraction=1.0)
