#!/usr/bin/env python
"""Distributed execution smoke check (CI).

Starts two real ``graphint worker`` services on loopback, then verifies the
coordinator invariants end-to-end over HTTP:

1. **Wire round trip**: a fan-out over the worker pool returns ordered,
   bit-identical results (including captured exception types).
2. **Data plane**: an array-heavy fan-out with a shared
   :class:`~repro.distributed.StageDataPlane` ships >=10x fewer coordinator
   bytes than the same fan-out without one, with identical results.
3. **Sharded grid + SIGKILL**: a k-Graph estimator grid sharded over both
   workers survives one worker being SIGKILLed mid-sweep and matches the
   serial grid bit-identically (the acceptance scenario).
4. **Fallback demotion**: a chain whose distributed member is unreachable
   demotes to serial and still returns correct results.

Exit status: 0 when every invariant holds, 1 otherwise.  The full matrix
lives in ``tests/test_distributed.py`` and ``tests/test_distributed_chaos.py``.

Usage::

    PYTHONPATH=src python benchmarks/distributed_smoke.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

_ANNOUNCE = re.compile(r"http://([\d.]+):(\d+) \(pid (\d+)\)")


def _check(condition: bool, message: str, failures: list) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        failures.append(message)


def _spawn_worker(data_plane: str):
    env = os.environ.copy()
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.viz.cli",
            "worker",
            "--port",
            "0",
            "--data-plane",
            data_plane,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 120
    lines = []
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = _ANNOUNCE.search(line)
        if match:
            return process, f"{match.group(1)}:{match.group(2)}", int(match.group(3))
    process.kill()
    raise RuntimeError(f"worker never announced itself: {''.join(lines)!r}")


def _roundtrip_phase(urls, failures: list) -> None:
    from repro.distributed import DistributedBackend
    from repro.distributed.functions import checked_sqrt, square
    from repro.exceptions import ValidationError
    from repro.parallel import SerialBackend

    print("wire round trip (ordered results + exception types)")
    jobs = [float(value) for value in range(10)]
    with DistributedBackend(urls) as backend:
        outcomes = backend.map_jobs(square, jobs)
        shipped = backend.bytes_shipped
        errored = backend.map_jobs(checked_sqrt, [4.0, -1.0])
    serial = SerialBackend().map_jobs(square, jobs)
    _check(
        [outcome.value for outcome in outcomes]
        == [outcome.value for outcome in serial],
        "10 results ordered and bit-identical to serial",
        failures,
    )
    _check(shipped > 0, f"coordinator accounted its payloads ({shipped} B)", failures)
    _check(
        errored[0].value == 2.0
        and isinstance(errored[1].exception, ValidationError),
        "a remote ValidationError reconstructs as its own class",
        failures,
    )


def _data_plane_phase(urls, plane_dir: str, failures: list) -> None:
    from repro.distributed import DistributedBackend, StageDataPlane
    from repro.distributed.functions import scale_array

    print("stage-cache data plane (fingerprints instead of arrays)")
    rng = np.random.default_rng(0)
    jobs = [(rng.standard_normal((512, 128)), float(i + 1)) for i in range(4)]
    with DistributedBackend(urls) as plain:
        baseline = plain.map_jobs(scale_array, jobs)
        bytes_no_plane = plain.bytes_shipped
    plane = StageDataPlane(plane_dir, min_bytes=16 * 1024)
    with DistributedBackend(urls, data_plane=plane) as planed:
        offloaded = planed.map_jobs(scale_array, jobs)
        bytes_plane = planed.bytes_shipped
    identical = all(
        np.array_equal(lhs.value, rhs.value)
        for lhs, rhs in zip(baseline, offloaded)
    )
    ratio = bytes_no_plane / max(bytes_plane, 1)
    _check(identical, "plane-resolved results bit-identical", failures)
    _check(
        ratio >= 10,
        f"data plane collapsed coordinator bytes {ratio:.0f}x "
        f"({bytes_no_plane} B -> {bytes_plane} B)",
        failures,
    )
    _check(
        plane.bytes_offloaded > 0,
        f"arrays travelled as refs ({plane.arrays_stashed} stashed, "
        f"{plane.arrays_deduplicated} deduplicated)",
        failures,
    )


def _grid_comparable(result) -> dict:
    # Wall-clock and per-process cache-hit counts legitimately differ
    # across execution topologies; everything else must match exactly.
    row = result.to_dict()
    row.pop("runtime_seconds", None)
    for measure in ("stages_cached", "stages_executed"):
        row.pop(measure, None)
    return row


def _grid_phase(urls, victim_pid: int, failures: list) -> None:
    from repro.benchmark.runner import BenchmarkRunner
    from repro.datasets.synthetic import make_cylinder_bell_funnel
    from repro.parallel import RetryPolicy

    print("sharded estimator grid + SIGKILL of one worker (acceptance)")
    dataset = make_cylinder_bell_funnel(
        n_series=12, length=64, noise=0.2, random_state=3
    )
    grid = {"n_lengths": [2, 3], "n_sectors": [8, 10]}
    base = {"n_clusters": 3}

    serial = BenchmarkRunner(["kgraph"]).run_estimator_grid(
        dataset, "kgraph", grid, base=base, random_state=7
    )

    killed = {"done": False}

    def _kill_one(method, dataset_name, result) -> None:
        if not killed["done"]:
            killed["done"] = True
            os.kill(victim_pid, signal.SIGKILL)

    runner = BenchmarkRunner(
        ["kgraph"],
        backend="distributed:" + ",".join(urls),
        retry=RetryPolicy(max_attempts=3, max_pool_rebuilds=2),
    )
    start = time.monotonic()
    sharded = runner.run_estimator_grid(
        dataset, "kgraph", grid, base=base, random_state=7, progress=_kill_one
    )
    elapsed = time.monotonic() - start
    _check(killed["done"], "one worker was SIGKILLed mid-sweep", failures)
    _check(
        not any(result.failed for result in sharded),
        "every combination completed despite the kill",
        failures,
    )
    _check(
        [_grid_comparable(result) for result in sharded]
        == [_grid_comparable(result) for result in serial],
        f"all {len(serial)} sharded results bit-identical to serial",
        failures,
    )
    _check(elapsed < 300.0, f"grid finished within budget ({elapsed:.1f} s)", failures)


def _fallback_phase(failures: list) -> None:
    from repro.distributed import DistributedBackend
    from repro.distributed.functions import square
    from repro.parallel import RetryPolicy, resolve_backend

    print("fallback demotion (unreachable pool -> serial)")
    chain = resolve_backend(
        DistributedBackend(
            ["127.0.0.1:9"], probe_timeout=0.2, request_timeout=0.5
        ),
        fallback="serial",
    )
    try:
        outcomes = chain.map_jobs(
            square,
            [float(value) for value in range(4)],
            retry=RetryPolicy(max_attempts=2, max_pool_rebuilds=0),
        )
        _check(
            len(chain.demotions) == 1,
            f"the chain demoted ({chain.demotions})",
            failures,
        )
        _check(
            [outcome.value for outcome in outcomes] == [0.0, 1.0, 4.0, 9.0],
            "the demoted re-run returned every result",
            failures,
        )
    finally:
        chain.close()


def main(argv=None) -> int:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    failures: list = []
    plane_dir = tempfile.mkdtemp(prefix="repro-distributed-smoke-")
    print("starting 2 loopback graphint workers")
    first, first_url, first_pid = _spawn_worker(plane_dir)
    second, second_url, second_pid = _spawn_worker(plane_dir)
    print(f"  workers: {first_url} (pid {first_pid}), {second_url} (pid {second_pid})")
    try:
        urls = [first_url, second_url]
        _roundtrip_phase(urls, failures)
        _data_plane_phase(urls, plane_dir, failures)
        _grid_phase(urls, first_pid, failures)
        _fallback_phase(failures)
    finally:
        for process in (first, second):
            if process.poll() is None:
                process.terminate()
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=15)
            process.stdout.close()
    if failures:
        print(
            f"\ndistributed smoke FAILED ({len(failures)} check(s)):",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        "\ndistributed smoke passed: the worker pool round-trips, offloads, "
        "survives a SIGKILL and demotes cleanly."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
