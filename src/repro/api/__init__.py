"""``repro.api`` — the unified estimator contract of the library.

Three pieces, threaded through every layer (benchmark, serve, pipeline,
CLI):

* **Protocols** (:mod:`repro.api.protocol`): :class:`Estimator` is what
  every clustering method exposes (``fit`` / ``predict`` /
  ``fit_predict`` / ``summary`` / ``get_config`` / ``from_config``);
  :class:`SupportsServing` adds the ``prediction_state()`` /
  ``validate_predict_input()`` pair the serving stack needs, and
  :class:`ServableState` is the picklable state it extracts.
* **Configs** (:mod:`repro.api.config`): frozen, versioned
  :class:`EstimatorConfig` dataclasses — :class:`KGraphConfig` for
  k-Graph, :class:`BaselineConfig` for every baseline — with validated
  construction, stable JSON round-trips, old-version migration hooks, a
  canonical :meth:`~EstimatorConfig.config_hash` and deterministic
  :meth:`~EstimatorConfig.expand_grid`.
* **Registry** (:mod:`repro.api.registry`): :func:`default_registry`
  resolves stable names (``kgraph``, ``kmeans``, ``kshape``, ...) to
  :class:`EstimatorSpec` entries that build configured estimators.

The registry is exported lazily (PEP 562): it pulls in every clustering
module, which ``import repro.api`` alone should not pay for.

This module's ``__all__`` is a deliberate public surface — it is snapshot
tested (``tests/test_api_surface.py``), so additions and removals are
explicit decisions, not accidents.
"""

from repro.api.config import (
    BaselineConfig,
    EstimatorConfig,
    KGraphConfig,
    config_field_info,
)
from repro.api.protocol import Estimator, ServableState, SupportsServing
from repro.exceptions import ConfigError

#: Registry exports resolved lazily — see module docstring.
_REGISTRY_EXPORTS = {"EstimatorRegistry", "EstimatorSpec", "default_registry"}


def __getattr__(name):
    if name in _REGISTRY_EXPORTS:
        from repro.api import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BaselineConfig",
    "ConfigError",
    "Estimator",
    "EstimatorConfig",
    "EstimatorRegistry",
    "EstimatorSpec",
    "KGraphConfig",
    "ServableState",
    "SupportsServing",
    "config_field_info",
    "default_registry",
]
