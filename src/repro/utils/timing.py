"""Lightweight timing utilities used by the benchmark harness and the GUI."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


def format_duration(seconds: float) -> str:
    """Render a duration in a human-friendly unit (µs, ms, s, min)."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60.0:
        return f"{seconds:.2f}s"
    minutes, rest = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rest:04.1f}s"


@dataclass
class Stopwatch:
    """Accumulates named timing sections.

    Example
    -------
    >>> watch = Stopwatch()
    >>> with watch.section("embedding"):
    ...     _ = sum(range(10))
    >>> "embedding" in watch.totals()
    True
    """

    _totals: Dict[str, float] = field(default_factory=dict)
    _counts: Dict[str, int] = field(default_factory=dict)
    _order: List[str] = field(default_factory=list)

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name`` (re-entrant accumulation)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            if name not in self._totals:
                self._totals[name] = 0.0
                self._counts[name] = 0
                self._order.append(name)
            self._totals[name] += elapsed
            self._counts[name] += 1

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Accumulate an externally measured duration under ``name``.

        This is how worker-local timings re-enter the parent's stopwatch:
        parallel pipeline stages time themselves in their own process/thread
        and the parent merges the resulting totals.
        """
        if seconds < 0:
            raise ValueError(f"duration must be non-negative, got {seconds}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if name not in self._totals:
            self._totals[name] = 0.0
            self._counts[name] = 0
            self._order.append(name)
        self._totals[name] += float(seconds)
        self._counts[name] += int(count)

    def merge(
        self, totals: "Stopwatch | Dict[str, float]", counts: Dict[str, int] | None = None
    ) -> None:
        """Merge another stopwatch (or a totals mapping) into this one.

        Sections are accumulated, so merging the per-worker stopwatches of a
        parallel fan-out yields the summed busy time per section — the same
        totals a serial run reports, rather than wall-clock time.
        """
        if isinstance(totals, Stopwatch):
            counts = totals.counts()
            totals = totals.totals()
        for name, seconds in totals.items():
            self.add(name, seconds, (counts or {}).get(name, 1))

    def totals(self) -> Dict[str, float]:
        """Total elapsed seconds per section, in first-seen order."""
        return {name: self._totals[name] for name in self._order}

    def counts(self) -> Dict[str, int]:
        """Number of times each section was entered."""
        return {name: self._counts[name] for name in self._order}

    def total(self) -> float:
        """Sum of all section durations."""
        return float(sum(self._totals.values()))

    def report(self) -> str:
        """Multi-line human-readable timing report."""
        lines = []
        for name in self._order:
            lines.append(
                f"{name:<28s} {format_duration(self._totals[name]):>10s}"
                f"  (x{self._counts[name]})"
            )
        lines.append(f"{'total':<28s} {format_duration(self.total()):>10s}")
        return "\n".join(lines)
