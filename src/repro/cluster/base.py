"""Common estimator API for every clustering algorithm in the library."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import NotFittedError


class BaseClusterer:
    """Minimal clustering estimator protocol.

    Subclasses implement :meth:`fit` and set ``labels_`` (and optionally
    ``cluster_centers_``); everything else is shared here.
    """

    labels_: Optional[np.ndarray] = None

    def fit(self, data) -> "BaseClusterer":  # pragma: no cover - abstract
        """Fit the clusterer on ``data`` and populate ``labels_``."""
        raise NotImplementedError

    def fit_predict(self, data) -> np.ndarray:
        """Fit on ``data`` and return the resulting labels."""
        self.fit(data)
        return self.labels_

    def _check_fitted(self) -> None:
        if self.labels_ is None:
            raise NotFittedError(
                f"{type(self).__name__} instance is not fitted yet; call fit() first"
            )

    @property
    def n_clusters_found_(self) -> int:
        """Number of distinct clusters in ``labels_`` (noise label -1 excluded)."""
        self._check_fitted()
        labels = np.asarray(self.labels_)
        return int(np.unique(labels[labels >= 0]).size)

    def get_params(self) -> Dict[str, object]:
        """Return constructor-style parameters (public attributes only)."""
        return {
            key: value
            for key, value in vars(self).items()
            if not key.endswith("_") and not key.startswith("_")
        }

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"


def relabel_consecutive(labels: np.ndarray) -> np.ndarray:
    """Map labels to consecutive integers 0..k-1, preserving -1 as noise."""
    labels = np.asarray(labels)
    result = np.full(labels.shape[0], -1, dtype=int)
    valid = labels >= 0
    if np.any(valid):
        _, inverse = np.unique(labels[valid], return_inverse=True)
        result[valid] = inverse
    return result
