"""Content-addressed stage checkpoints: in-memory and on-disk caches.

A :class:`~repro.pipeline.Pipeline` asks its cache for each stage's key
before running it; a hit replays the checkpointed outputs and the stage is
skipped entirely.  Keys are content-addressed (stage name + version +
config subset + input fingerprints — see :mod:`repro.pipeline.fingerprint`),
so a re-run with one changed parameter re-executes only the stages whose
key actually changed, and everything downstream of them.

Two implementations:

* :class:`MemoryStageCache` — a bounded LRU for same-process reuse
  (parameter grids, repeated fits in a service).
* :class:`DiskStageCache` — a directory of checkpoint files for
  cross-process / cross-session resume (``graphint pipeline run --resume``).
  Entries are written atomically (payload first, then the JSON meta record
  as the commit marker — the same crash-safety idiom as the model-artifact
  manifest), and the payload format is pickle: the cache is a *local,
  trusted* checkpoint store scoped to one machine and one library version,
  not an exchange format like :mod:`repro.serve.artifacts`.
"""

from __future__ import annotations

import copy
import dataclasses
import json
import os
import pickle
import tempfile
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from threading import Lock
from typing import Dict, List, Optional, Union

import numpy as np

from repro.exceptions import PipelineError
from repro.utils.validation import check_positive_int


def _clone_generators(value: object) -> object:
    """Deep-copy every :class:`numpy.random.Generator` inside ``value``.

    Checkpointed outputs are otherwise stored and replayed *by reference*
    (stages treat their inputs as read-only), but generators are the one
    output a downstream stage legitimately mutates by drawing from them.
    Snapshotting them on ``put`` and handing out fresh copies on ``get``
    keeps every replay starting from the pristine stream position — the
    disk cache gets this for free from its pickle round-trip.  Containers
    are rebuilt only along paths that actually hold a generator, so arrays
    and graphs are never copied.
    """
    if isinstance(value, np.random.Generator):
        return copy.deepcopy(value)
    if isinstance(value, dict):
        cloned = {key: _clone_generators(item) for key, item in value.items()}
        if all(cloned[key] is value[key] for key in value):
            return value
        return cloned
    if isinstance(value, (list, tuple)):
        cloned_items = [_clone_generators(item) for item in value]
        if all(new is old for new, old in zip(cloned_items, value)):
            return value
        return type(value)(cloned_items)
    return value


@dataclass
class CacheStats:
    """Hit/miss/store counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: Corrupt checkpoints renamed aside (``*.corrupt``) on a failed load.
    quarantines: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "quarantines": self.quarantines,
        }


@dataclass
class CacheEntryMeta:
    """Descriptive record kept next to each checkpoint (for ``inspect``)."""

    key: str
    stage: str
    outputs: List[str] = field(default_factory=list)
    seconds: float = 0.0
    created_unix: float = 0.0
    #: On-disk payload size in bytes; 0 for in-memory entries (outputs are
    #: stored by reference there, so no serialised size exists).
    payload_bytes: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "stage": self.stage,
            "outputs": list(self.outputs),
            "seconds": float(self.seconds),
            "created_unix": float(self.created_unix),
            "payload_bytes": int(self.payload_bytes),
        }


class StageCache(ABC):
    """Checkpoint store the pipeline consults before running each stage."""

    def __init__(self) -> None:
        self.counters = CacheStats()

    @abstractmethod
    def get(self, key: str) -> Optional[Dict[str, object]]:
        """Return the checkpointed outputs for ``key``, or ``None``."""

    @abstractmethod
    def put(self, key: str, outputs: Dict[str, object], meta: CacheEntryMeta) -> None:
        """Checkpoint ``outputs`` under ``key``."""

    @abstractmethod
    def entries(self) -> List[CacheEntryMeta]:
        """Describe every stored checkpoint (newest last)."""

    @abstractmethod
    def clear(self) -> None:
        """Drop every checkpoint (counters are kept)."""

    def _occupancy(self) -> Dict[str, object]:
        """Implementation-specific occupancy figures merged into stats()."""
        return {}

    def stats(self) -> Dict[str, object]:
        """Uniform counters + occupancy snapshot of this cache.

        Every implementation reports the same counter keys (``hits``,
        ``misses``, ``stores``, ``evictions``) plus its own occupancy —
        entry count and capacity for :class:`MemoryStageCache`; entry
        count, byte total, budget and policy for :class:`DiskStageCache`.
        """
        data: Dict[str, object] = self.counters.as_dict()
        data.update(self._occupancy())
        return data


class MemoryStageCache(StageCache):
    """A bounded in-process LRU of stage checkpoints.

    Outputs are stored by reference (no copy): stages treat their inputs as
    read-only, the same contract the shared-memory backend already imposes
    on jobs, so replaying a reference is safe and free.
    """

    def __init__(self, max_entries: int = 32) -> None:
        super().__init__()
        self.max_entries = check_positive_int(max_entries, "max_entries")
        self._entries: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._meta: Dict[str, CacheEntryMeta] = {}
        self._lock = Lock()

    def get(self, key: str) -> Optional[Dict[str, object]]:
        with self._lock:
            if key not in self._entries:
                self.counters.misses += 1
                return None
            self._entries.move_to_end(key)
            self.counters.hits += 1
            return {
                name: _clone_generators(value)
                for name, value in self._entries[key].items()
            }

    def put(self, key: str, outputs: Dict[str, object], meta: CacheEntryMeta) -> None:
        with self._lock:
            self._entries[key] = {
                name: _clone_generators(value) for name, value in outputs.items()
            }
            self._entries.move_to_end(key)
            self._meta[key] = meta
            self.counters.stores += 1
            while len(self._entries) > self.max_entries:
                evicted, _ = self._entries.popitem(last=False)
                self._meta.pop(evicted, None)
                self.counters.evictions += 1

    def entries(self) -> List[CacheEntryMeta]:
        with self._lock:
            return [self._meta[key] for key in self._entries]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._meta.clear()

    def _occupancy(self) -> Dict[str, object]:
        with self._lock:
            return {"entries": len(self._entries), "max_entries": self.max_entries}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Eviction orders :class:`DiskStageCache` understands.
DISK_CACHE_POLICIES = ("lru", "lfu")


class DiskStageCache(StageCache):
    """A directory of stage checkpoints for cross-session resume.

    Layout: one ``<key>.pkl`` payload plus one ``<key>.json`` meta record
    per checkpoint.  The meta record is written last via tmp+rename — it is
    the entry's commit marker, so a crash mid-write leaves an orphan
    payload that is ignored (and overwritten) rather than a half-readable
    checkpoint.

    Economics: ``budget_bytes`` caps the cache's on-disk footprint.  Every
    ``put`` first commits the new entry, then evicts committed entries in
    ``policy`` order (``"lru"`` — least recently *used*, ``"lfu"`` — least
    frequently used) until the total fits, so the cache never exceeds its
    budget after any put — a full UCR sweep can share one bounded
    directory.  Sizes, hit counts and recency live in a persisted
    ``_index.json`` ledger (written atomically, like every other file
    here); a corrupt or missing index is rebuilt from the meta records, it
    can never poison correctness because ``get`` trusts only the payload +
    meta pair on disk.
    """

    PAYLOAD_SUFFIX = ".pkl"
    META_SUFFIX = ".json"
    INDEX_NAME = "_index.json"

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        budget_bytes: Optional[int] = None,
        policy: str = "lru",
    ) -> None:
        super().__init__()
        self.directory = Path(directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise PipelineError(
                f"stage cache path {self.directory} exists and is not a directory"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        if policy not in DISK_CACHE_POLICIES:
            raise PipelineError(
                f"cache policy must be one of {list(DISK_CACHE_POLICIES)}, "
                f"got {policy!r}"
            )
        self.policy = policy
        if budget_bytes is not None:
            budget_bytes = int(budget_bytes)
            if budget_bytes < 1:
                raise PipelineError(
                    f"budget_bytes must be a positive byte count or None, "
                    f"got {budget_bytes}"
                )
        self.budget_bytes = budget_bytes
        self._lock = Lock()
        self._index: Dict[str, Dict[str, object]] = self._load_index()
        self._clock = max(
            (int(record.get("access", 0)) for record in self._index.values()),
            default=0,
        )

    # ------------------------------------------------------------------ #
    def _payload_path(self, key: str) -> Path:
        return self.directory / f"{key}{self.PAYLOAD_SUFFIX}"

    def _meta_path(self, key: str) -> Path:
        return self.directory / f"{key}{self.META_SUFFIX}"

    def _index_path(self) -> Path:
        return self.directory / self.INDEX_NAME

    # ------------------------------------------------------------------ #
    # the economics ledger (sizes, hits, recency)
    # ------------------------------------------------------------------ #
    def _entry_size(self, key: str) -> int:
        size = 0
        for path in (self._payload_path(key), self._meta_path(key)):
            try:
                size += path.stat().st_size
            except OSError:
                pass
        return size

    def _rebuild_index(self) -> Dict[str, Dict[str, object]]:
        """Reconstruct the ledger from the committed meta records.

        Hit counts and recency are lost (reset to the creation order), but
        sizes — what the budget enforcement needs — come straight from the
        files, so a corrupt index degrades economics precision, never
        correctness.
        """
        index: Dict[str, Dict[str, object]] = {}
        for order, entry in enumerate(self.entries(), start=1):
            index[entry.key] = {
                "size": self._entry_size(entry.key),
                "hits": 0,
                "access": order,
                "stage": entry.stage,
                "created_unix": entry.created_unix,
            }
        return index

    def _load_index(self) -> Dict[str, Dict[str, object]]:
        try:
            with self._index_path().open("r", encoding="utf-8") as handle:
                raw = json.load(handle)
            entries = raw["entries"]
            index: Dict[str, Dict[str, object]] = {}
            for key, record in entries.items():
                index[str(key)] = {
                    "size": int(record["size"]),
                    "hits": int(record.get("hits", 0)),
                    "access": int(record.get("access", 0)),
                    "stage": str(record.get("stage", "")),
                    "created_unix": float(record.get("created_unix", 0.0)),
                }
            return index
        except (OSError, json.JSONDecodeError, KeyError, ValueError, TypeError, AttributeError):
            return self._rebuild_index()

    def _save_index(self) -> None:
        payload = json.dumps(
            {"version": 1, "entries": self._index}, indent=2, sort_keys=True
        ).encode("utf-8")
        try:
            self._write_atomic(self._index_path(), lambda handle: handle.write(payload))
        except OSError:  # pragma: no cover - read-only directory etc.
            pass  # the ledger is advisory; the next load rebuilds it

    def _touch(self, key: str, *, hit: bool) -> None:
        record = self._index.get(key)
        if record is None:
            # Entry written by another process sharing the directory (or a
            # pre-index version): adopt it into the ledger.
            record = {
                "size": self._entry_size(key),
                "hits": 0,
                "access": 0,
                "stage": "",
                "created_unix": 0.0,
            }
            self._index[key] = record
        self._clock += 1
        record["access"] = self._clock
        if hit:
            record["hits"] = int(record["hits"]) + 1

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[Dict[str, object]]:
        meta_path = self._meta_path(key)
        payload_path = self._payload_path(key)
        if not (meta_path.exists() and payload_path.exists()):
            self.counters.misses += 1
            return None
        try:
            with payload_path.open("rb") as handle:
                outputs = pickle.load(handle)
        except Exception:  # noqa: BLE001 - a corrupt checkpoint is a miss
            # A checkpoint that cannot be replayed must never poison the
            # run; quarantining it (rename to *.corrupt) turns what would
            # be a silent re-read-and-re-miss on every future run into a
            # one-time event that leaves the bytes behind for diagnosis.
            self._quarantine(key)
            self.counters.misses += 1
            return None
        if not isinstance(outputs, dict):
            self._quarantine(key)
            self.counters.misses += 1
            return None
        self.counters.hits += 1
        with self._lock:
            self._touch(key, hit=True)
            self._save_index()
        return outputs

    def _quarantine(self, key: str) -> None:
        """Move a corrupt checkpoint aside so it is never re-read.

        Payload and meta are renamed to ``*.corrupt`` (atomic within the
        directory, best-effort if a concurrent clear already removed them)
        and the key leaves the advisory ledger.  The ``.corrupt`` suffix
        matches neither ``*.pkl`` nor ``*.json``, so ``entries()``,
        ``clear()`` and eviction never look at a quarantined file again —
        but the bytes stay on disk for diagnosis instead of being silently
        re-read and re-missed on every future run.
        """
        quarantined = False
        for path in (self._payload_path(key), self._meta_path(key)):
            try:
                os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
                quarantined = True
            except OSError:
                pass
        if quarantined:
            self.counters.quarantines += 1
        with self._lock:
            if self._index.pop(key, None) is not None:
                self._save_index()

    def put(self, key: str, outputs: Dict[str, object], meta: CacheEntryMeta) -> None:
        # Unique tmp names (mkstemp): two processes sharing the directory
        # may store the same key concurrently, and a fixed tmp path would
        # let one writer truncate the other's half-written bytes and then
        # commit a corrupt payload behind a valid meta marker.
        self._write_atomic(
            self._payload_path(key), lambda handle: pickle.dump(dict(outputs), handle, protocol=4)
        )
        try:
            payload_bytes = self._payload_path(key).stat().st_size
        except OSError:  # pragma: no cover - raced by a concurrent clear
            payload_bytes = 0
        meta = dataclasses.replace(meta, payload_bytes=int(payload_bytes))
        meta_bytes = json.dumps(meta.as_dict(), indent=2, sort_keys=True).encode("utf-8")
        self._write_atomic(self._meta_path(key), lambda handle: handle.write(meta_bytes))
        self.counters.stores += 1
        with self._lock:
            self._touch(key, hit=False)
            record = self._index[key]
            record["size"] = int(payload_bytes) + len(meta_bytes)
            record["stage"] = meta.stage
            record["created_unix"] = float(meta.created_unix)
            if self.budget_bytes is not None:
                self._evict_to_locked(self.budget_bytes)
            self._save_index()

    # ------------------------------------------------------------------ #
    # eviction
    # ------------------------------------------------------------------ #
    def _eviction_order(self) -> List[str]:
        if self.policy == "lfu":
            # Least frequently used first; recency breaks ties, so a cold
            # cache degenerates to LRU instead of alphabetical chance.
            sort_key = lambda key: (  # noqa: E731 - tiny local ordering
                int(self._index[key]["hits"]),
                int(self._index[key]["access"]),
            )
        else:
            sort_key = lambda key: int(self._index[key]["access"])  # noqa: E731
        return sorted(self._index, key=sort_key)

    def _evict_to_locked(self, budget: int) -> int:
        evicted = 0
        total = sum(int(record["size"]) for record in self._index.values())
        for key in self._eviction_order():
            if total <= budget:
                break
            record = self._index.pop(key)
            total -= int(record["size"])
            for path in (self._payload_path(key), self._meta_path(key)):
                try:
                    path.unlink()
                except OSError:
                    pass
            self.counters.evictions += 1
            evicted += 1
        return evicted

    def evict_to(self, budget: int) -> int:
        """Evict entries in policy order until the total fits ``budget``.

        Returns the number of entries removed.  ``put`` calls this
        automatically when the cache has a ``budget_bytes``; calling it
        directly shrinks an unbounded cache on demand (the CLI's
        ``--cache-budget`` on an existing directory does exactly that).
        """
        if int(budget) < 0:
            raise PipelineError(f"budget must be >= 0, got {budget}")
        with self._lock:
            evicted = self._evict_to_locked(int(budget))
            self._save_index()
        return evicted

    def total_bytes(self) -> int:
        """Current on-disk footprint of every committed entry (ledger view)."""
        with self._lock:
            return sum(int(record["size"]) for record in self._index.values())

    def _occupancy(self) -> Dict[str, object]:
        with self._lock:
            return {
                "entries": len(self._index),
                "total_bytes": sum(
                    int(record["size"]) for record in self._index.values()
                ),
                "budget_bytes": self.budget_bytes,
                "policy": self.policy,
            }

    def _write_atomic(self, path: Path, write) -> None:
        descriptor, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                write(handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def entries(self) -> List[CacheEntryMeta]:
        records: List[CacheEntryMeta] = []
        for meta_path in sorted(self.directory.glob(f"*{self.META_SUFFIX}")):
            try:
                with meta_path.open("r", encoding="utf-8") as handle:
                    raw = json.load(handle)
                if str(raw["key"]) != meta_path.stem:
                    continue  # foreign JSON file, not a checkpoint we wrote
                records.append(
                    CacheEntryMeta(
                        key=str(raw["key"]),
                        stage=str(raw["stage"]),
                        outputs=[str(name) for name in raw.get("outputs", [])],
                        seconds=float(raw.get("seconds", 0.0)),
                        created_unix=float(raw.get("created_unix", 0.0)),
                        payload_bytes=int(raw.get("payload_bytes", 0)),
                    )
                )
            except (OSError, json.JSONDecodeError, KeyError, ValueError):
                continue  # orphan/corrupt meta: not a committed entry
        records.sort(key=lambda record: record.created_unix)
        return records

    def clear(self) -> None:
        """Drop every *committed* checkpoint plus leftover tmp files.

        Deliberately conservative: only `<key>.pkl` / `<key>.json` pairs
        whose meta record parses and names its own file stem are removed,
        so pointing a cache at a directory that also holds unrelated
        ``.json`` / ``.pkl`` files (a results folder, a repo root) never
        deletes anything that is not a checkpoint this class wrote.
        """
        for entry in self.entries():
            for path in (self._payload_path(entry.key), self._meta_path(entry.key)):
                try:
                    path.unlink()
                except OSError:
                    pass
        for leftover in self.directory.glob("*.tmp"):
            name = leftover.name
            if f"{self.PAYLOAD_SUFFIX}." in name or f"{self.META_SUFFIX}." in name:
                try:
                    leftover.unlink()
                except OSError:
                    pass
        with self._lock:
            self._index.clear()
            try:
                self._index_path().unlink()
            except OSError:
                pass

    def __len__(self) -> int:
        return len(self.entries())


def resolve_stage_cache(
    cache: Union[None, str, Path, StageCache],
    *,
    budget_bytes: Optional[int] = None,
    policy: str = "lru",
) -> Optional[StageCache]:
    """Normalise the ``stage_cache=`` argument every pipeline API accepts.

    ``None`` disables checkpointing, a path selects a
    :class:`DiskStageCache` rooted there (``budget_bytes`` / ``policy``
    configure its eviction economics), and a :class:`StageCache` instance
    is used as-is (shared instances are how a parameter grid reuses
    upstream stages across fits) — combining an instance with the economics
    keywords is rejected, since the instance already fixed its own budget.
    """
    if cache is None:
        if budget_bytes is not None:
            raise PipelineError(
                "cache budget given but checkpointing is disabled (stage_cache=None)"
            )
        return None
    if isinstance(cache, StageCache):
        if budget_bytes is not None:
            raise PipelineError(
                "budget_bytes cannot be combined with a StageCache instance; "
                "configure the budget on the instance instead"
            )
        return cache
    if isinstance(cache, (str, Path)):
        return DiskStageCache(cache, budget_bytes=budget_bytes, policy=policy)
    raise PipelineError(
        f"stage_cache must be None, a directory path, or a StageCache, "
        f"got {type(cache).__name__}"
    )
