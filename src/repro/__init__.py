"""Graphint / k-Graph: graph-based interpretable time series clustering.

This package is a from-scratch reproduction of

    *Graphint: Graph-Based Time Series Clustering Visualisation Tool*
    (Boniol, Tiano, Bonifati, Palpanas — ICDE 2025),

covering both the k-Graph clustering pipeline (graph embedding, graph
clustering, consensus clustering, interpretability computation) and the
Graphint visual-analysis tool (five interactive frames rendered as
self-contained HTML/SVG).

Quickstart
----------
>>> from repro import KGraph, generate_dataset
>>> dataset = generate_dataset("cylinder_bell_funnel", random_state=0)
>>> model = KGraph(n_clusters=3, n_lengths=3, random_state=0)
>>> labels = model.fit_predict(dataset.data)

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
experiments reproducing every frame/figure of the paper.
"""

from repro.api.config import BaselineConfig, EstimatorConfig, KGraphConfig
from repro.api.protocol import Estimator, ServableState, SupportsServing
from repro.core.kgraph import KGraph, KGraphResult
from repro.datasets.catalogue import default_catalogue, generate_dataset, list_dataset_names
from repro.parallel import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.metrics.clustering import (
    adjusted_mutual_information,
    adjusted_rand_index,
    normalized_mutual_information,
    rand_index,
)
from repro.utils.containers import TimeSeriesDataset

__version__ = "1.1.0"

#: Serving API re-exported lazily (PEP 562) — repro.serve sits on top of the
#: whole library, so importing it eagerly here would be circular.
_SERVE_EXPORTS = {
    "save_model",
    "load_model",
    "ModelRegistry",
    "InferenceEngine",
    "ServeApplication",
}

#: Estimator-registry exports re-exported lazily — building the registry
#: imports every baseline (and hence every clustering module).
_API_EXPORTS = {"EstimatorRegistry", "EstimatorSpec", "default_registry"}


def __getattr__(name):
    if name in _SERVE_EXPORTS:
        from repro import serve

        return getattr(serve, name)
    if name in _API_EXPORTS:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BaselineConfig",
    "Estimator",
    "EstimatorConfig",
    "EstimatorRegistry",
    "EstimatorSpec",
    "KGraphConfig",
    "ServableState",
    "SupportsServing",
    "default_registry",
    "InferenceEngine",
    "ModelRegistry",
    "ServeApplication",
    "load_model",
    "save_model",
    "ExecutionBackend",
    "KGraph",
    "KGraphResult",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "TimeSeriesDataset",
    "__version__",
    "resolve_backend",
    "adjusted_mutual_information",
    "adjusted_rand_index",
    "default_catalogue",
    "generate_dataset",
    "list_dataset_names",
    "normalized_mutual_information",
    "rand_index",
]
