"""The estimator registry: stable names for k-Graph and every baseline.

One :class:`EstimatorSpec` per method binds a stable registry name to its
typed config class and estimator factory, so the benchmark harness, the
serving stack, parameter grids and the CLI all resolve "an estimator" the
same way.  :func:`default_registry` builds the canonical registry from the
baseline method registry plus k-Graph; it is constructed lazily (the
baselines pull in every clustering module) and cached.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Type

from repro.api.config import (
    BaselineConfig,
    EstimatorConfig,
    KGraphConfig,
    config_field_info,
)
from repro.exceptions import ValidationError


def _build_kgraph(config: EstimatorConfig, **runtime) -> object:
    from repro.core.kgraph import KGraph

    return KGraph.from_config(config, **runtime)


def _build_baseline(config: EstimatorConfig, **runtime) -> object:
    from repro.baselines.estimator import BaselineEstimator

    return BaselineEstimator.from_config(config, **runtime)


@dataclass(frozen=True)
class EstimatorSpec:
    """Everything the library needs to build one registered estimator.

    Attributes
    ----------
    name:
        Stable registry key (also what serve manifests record).
    family:
        Method family the Benchmark frame groups by.
    description:
        One-line human description (CLI ``estimators list``).
    config_cls:
        The :class:`~repro.api.config.EstimatorConfig` subclass carrying
        this estimator's parameters.
    servable:
        Whether built estimators implement
        :class:`~repro.api.protocol.SupportsServing` (all current
        estimators do: k-Graph natively, baselines via centroid states).
    """

    name: str
    family: str
    description: str
    config_cls: Type[EstimatorConfig]
    servable: bool = True
    _builder: Callable[..., object] = field(default=_build_baseline, repr=False)

    # ------------------------------------------------------------------ #
    def make_config(self, **params) -> EstimatorConfig:
        """Build this estimator's config from sparse keyword parameters.

        Baseline configs get their ``method`` field injected from the
        registry name, so callers never repeat it.  Unknown keys fail by
        name (the shared :meth:`EstimatorConfig.from_options` contract).
        """
        if issubclass(self.config_cls, BaselineConfig):
            params.setdefault("method", self.name)
        return self.config_cls.from_options(overrides=params)

    def expand_grid(
        self, grid, *, base: Optional[EstimatorConfig] = None
    ) -> List[EstimatorConfig]:
        """Expand a dict-of-lists into concrete configs for this estimator."""
        if base is None and issubclass(self.config_cls, BaselineConfig):
            base = self.make_config()
        return self.config_cls.expand_grid(grid, base=base)

    def build(self, config: Optional[EstimatorConfig] = None, **runtime) -> object:
        """Instantiate the estimator (default config when none is given).

        ``runtime`` keywords (``backend``, ``n_jobs``, ``stage_backends``,
        ``stage_cache``) are execution concerns, not configuration — they
        never affect results and are forwarded to estimators that accept
        them (k-Graph) and ignored by the rest.
        """
        if config is None:
            config = self.make_config()
        if not isinstance(config, self.config_cls):
            raise ValidationError(
                f"estimator {self.name!r} expects a "
                f"{self.config_cls.__name__}, got {type(config).__name__}"
            )
        return self._builder(config, **runtime)

    def describe(self) -> Dict[str, object]:
        """JSON-serialisable description (CLI ``estimators describe``)."""
        return {
            "name": self.name,
            "family": self.family,
            "description": self.description,
            "servable": self.servable,
            "config": self.config_cls.__name__,
            "config_version": int(self.config_cls.version),
            "fields": config_field_info(self.config_cls),
        }


class EstimatorRegistry:
    """A named collection of :class:`EstimatorSpec` entries."""

    def __init__(self) -> None:
        self._specs: Dict[str, EstimatorSpec] = {}

    def register(self, spec: EstimatorSpec) -> None:
        """Add a spec; re-registering an existing name is rejected."""
        key = spec.name.strip().lower()
        if key in self._specs:
            raise ValidationError(f"estimator {key!r} is already registered")
        self._specs[key] = spec

    def get(self, name: str) -> EstimatorSpec:
        """Look a spec up by name (case-insensitive)."""
        key = str(name).strip().lower()
        if key not in self._specs:
            raise ValidationError(
                f"unknown estimator {name!r}; available: {self.names()}"
            )
        return self._specs[key]

    def names(self) -> List[str]:
        """Every registered estimator name, sorted."""
        return sorted(self._specs)

    def specs(self) -> Tuple[EstimatorSpec, ...]:
        """Every registered spec, in name order."""
        return tuple(self._specs[name] for name in self.names())

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.strip().lower() in self._specs

    def __len__(self) -> int:
        return len(self._specs)


_default_registry: Optional[EstimatorRegistry] = None
_registry_lock = threading.Lock()


def default_registry() -> EstimatorRegistry:
    """The canonical registry: k-Graph plus every baseline method.

    Built lazily on first use (importing the baselines pulls in every
    clustering module) and shared afterwards; registering additional
    estimators on the returned instance makes them visible library-wide
    (benchmark, serving, CLI).
    """
    global _default_registry
    with _registry_lock:
        if _default_registry is None:
            from repro.baselines.registry import available_methods, get_method

            registry = EstimatorRegistry()
            for name in available_methods():
                method = get_method(name)
                if name == "kgraph":
                    registry.register(
                        EstimatorSpec(
                            name=name,
                            family=method.family,
                            description=method.description,
                            config_cls=KGraphConfig,
                            servable=True,
                            _builder=_build_kgraph,
                        )
                    )
                else:
                    registry.register(
                        EstimatorSpec(
                            name=name,
                            family=method.family,
                            description=method.description,
                            config_cls=BaselineConfig,
                            servable=True,
                            _builder=_build_baseline,
                        )
                    )
            _default_registry = registry
    return _default_registry
