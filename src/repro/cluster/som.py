"""Self-organising map (Kohonen network) clustering.

The SOM serves two roles: it is a stand-alone baseline, and it is the
quantisation backbone of the SOM-VAE-style deep baseline in
:mod:`repro.baselines`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.cluster.base import BaseClusterer
from repro.exceptions import ValidationError
from repro.utils.validation import check_array, check_positive_int, check_random_state


class SelfOrganizingMap(BaseClusterer):
    """Rectangular-grid SOM trained with exponentially decaying neighbourhood.

    Parameters
    ----------
    grid_shape:
        ``(rows, cols)`` of the SOM lattice; the number of units bounds the
        number of clusters.
    n_clusters:
        Optional number of final clusters.  When smaller than the number of
        units, unit prototypes are merged with k-Means; when ``None``, each
        non-empty unit is its own cluster.
    n_epochs:
        Training passes over the data.
    learning_rate:
        Initial learning rate (decays to ~1% of it).
    sigma:
        Initial neighbourhood radius in grid space (defaults to half the grid
        diagonal).
    random_state:
        Seed for weight initialisation and sample order shuffling.
    """

    def __init__(
        self,
        grid_shape: Tuple[int, int] = (3, 3),
        *,
        n_clusters: Optional[int] = None,
        n_epochs: int = 20,
        learning_rate: float = 0.5,
        sigma: Optional[float] = None,
        random_state=None,
    ) -> None:
        rows = check_positive_int(int(grid_shape[0]), "grid rows")
        cols = check_positive_int(int(grid_shape[1]), "grid cols")
        self.grid_shape = (rows, cols)
        self.n_clusters = None if n_clusters is None else check_positive_int(n_clusters, "n_clusters")
        self.n_epochs = check_positive_int(n_epochs, "n_epochs")
        if learning_rate <= 0:
            raise ValidationError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = float(learning_rate)
        if sigma is not None and sigma <= 0:
            raise ValidationError(f"sigma must be positive, got {sigma}")
        self.sigma = sigma
        self.random_state = random_state

        self.weights_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.unit_assignments_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    @property
    def n_units(self) -> int:
        """Number of lattice units."""
        return self.grid_shape[0] * self.grid_shape[1]

    def _grid_coordinates(self) -> np.ndarray:
        rows, cols = self.grid_shape
        coords = np.array([(r, c) for r in range(rows) for c in range(cols)], dtype=float)
        return coords

    def fit(self, data) -> "SelfOrganizingMap":
        """Train the map and derive cluster labels."""
        array = check_array(data, name="data", ndim=2, min_rows=1)
        n, d = array.shape
        rng = check_random_state(self.random_state)

        low, high = array.min(axis=0), array.max(axis=0)
        span = np.where(high - low < 1e-12, 1.0, high - low)
        self.weights_ = rng.uniform(size=(self.n_units, d)) * span + low

        coords = self._grid_coordinates()
        sigma0 = self.sigma if self.sigma is not None else max(self.grid_shape) / 2.0
        total_steps = self.n_epochs * n
        step = 0
        for _ in range(self.n_epochs):
            for idx in rng.permutation(n):
                progress = step / max(total_steps - 1, 1)
                lr = self.learning_rate * np.exp(-4.0 * progress)
                sigma = max(sigma0 * np.exp(-4.0 * progress), 0.3)
                sample = array[idx]
                bmu = int(np.argmin(np.linalg.norm(self.weights_ - sample, axis=1)))
                grid_dist = np.linalg.norm(coords - coords[bmu], axis=1)
                influence = np.exp(-(grid_dist**2) / (2.0 * sigma**2))
                self.weights_ += lr * influence[:, None] * (sample - self.weights_)
                step += 1

        assignments = np.argmin(
            np.linalg.norm(array[:, None, :] - self.weights_[None, :, :], axis=2), axis=1
        )
        self.unit_assignments_ = assignments

        if self.n_clusters is None or self.n_clusters >= self.n_units:
            # Each non-empty unit is a cluster.
            from repro.cluster.base import relabel_consecutive

            self.labels_ = relabel_consecutive(assignments)
        else:
            from repro.cluster.kmeans import KMeans

            unit_clusters = KMeans(
                n_clusters=self.n_clusters, n_init=5, random_state=rng
            ).fit_predict(self.weights_)
            self.labels_ = unit_clusters[assignments]
        return self
