"""Statistical / temporal feature extraction for feature-based baselines.

FeatTS and Time2Feat (cited in the paper's introduction as feature-based
competitors) cluster time series after turning each series into a vector of
descriptive features.  This package provides the feature bank, matrix
extraction, and a simple variance/correlation-based feature selector used by
those baselines in the Benchmark frame.
"""

from repro.features.bank import (
    FEATURE_NAMES,
    autocorrelation,
    binned_entropy,
    count_above_mean,
    crossing_points,
    extract_features,
    feature_vector,
    longest_strike_above_mean,
    number_of_peaks,
    seasonality_strength,
    spectral_centroid,
    trend_strength,
)
from repro.features.selection import select_features, variance_ranking

__all__ = [
    "FEATURE_NAMES",
    "autocorrelation",
    "binned_entropy",
    "count_above_mean",
    "crossing_points",
    "extract_features",
    "feature_vector",
    "longest_strike_above_mean",
    "number_of_peaks",
    "seasonality_strength",
    "select_features",
    "spectral_centroid",
    "trend_strength",
    "variance_ranking",
]
