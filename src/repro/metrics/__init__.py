"""Distances and clustering-quality measures.

This package replaces the scikit-learn / tslearn metric stack with
from-scratch NumPy implementations:

* :mod:`repro.metrics.distances` — Euclidean, shape-based distance (SBD),
  dynamic time warping, cross-correlation.
* :mod:`repro.metrics.contingency` — contingency tables and pair counts.
* :mod:`repro.metrics.clustering` — Rand index, adjusted Rand index, mutual
  information, NMI, AMI, homogeneity/completeness/V-measure, purity,
  Fowlkes-Mallows.
* :mod:`repro.metrics.silhouette` — silhouette coefficient on arbitrary
  distance matrices.
"""

from repro.metrics.distances import (
    cross_correlation,
    dtw_distance,
    euclidean_distance,
    pairwise_distances,
    sbd_distance,
    znormalized_euclidean_distance,
)
from repro.metrics.contingency import contingency_matrix, pair_confusion_matrix
from repro.metrics.clustering import (
    adjusted_mutual_information,
    adjusted_rand_index,
    clustering_report,
    completeness_score,
    fowlkes_mallows_index,
    homogeneity_score,
    mutual_information,
    normalized_mutual_information,
    purity_score,
    rand_index,
    v_measure_score,
)
from repro.metrics.silhouette import silhouette_samples, silhouette_score

__all__ = [
    "adjusted_mutual_information",
    "adjusted_rand_index",
    "clustering_report",
    "completeness_score",
    "contingency_matrix",
    "cross_correlation",
    "dtw_distance",
    "euclidean_distance",
    "fowlkes_mallows_index",
    "homogeneity_score",
    "mutual_information",
    "normalized_mutual_information",
    "pair_confusion_matrix",
    "pairwise_distances",
    "purity_score",
    "rand_index",
    "sbd_distance",
    "silhouette_samples",
    "silhouette_score",
    "v_measure_score",
    "znormalized_euclidean_distance",
]

#: Names of the evaluation measures exposed in the Benchmark frame (Fig. 2).
BENCHMARK_MEASURES = ("ari", "ri", "nmi", "ami")


def evaluate_measure(name: str, labels_true, labels_pred) -> float:
    """Evaluate one of the Benchmark-frame measures by name.

    Parameters
    ----------
    name:
        One of ``"ari"``, ``"ri"``, ``"nmi"``, ``"ami"`` (case-insensitive),
        plus the extra aliases ``"purity"``, ``"vmeasure"`` and ``"fmi"``.
    """
    key = name.strip().lower()
    mapping = {
        "ari": adjusted_rand_index,
        "ri": rand_index,
        "nmi": normalized_mutual_information,
        "ami": adjusted_mutual_information,
        "purity": purity_score,
        "vmeasure": v_measure_score,
        "fmi": fowlkes_mallows_index,
    }
    if key not in mapping:
        raise ValueError(f"unknown evaluation measure {name!r}; expected one of {sorted(mapping)}")
    return mapping[key](labels_true, labels_pred)
