"""Unit tests for graph rendering and the five Graphint frames."""

import numpy as np
import pytest

from repro.benchmark.runner import BenchmarkResult
from repro.exceptions import VisualizationError
from repro.viz.frames import (
    build_benchmark_frame,
    build_clustering_comparison_frame,
    build_graph_frame,
    build_interpretability_frame,
    build_under_the_hood_frame,
)
from repro.viz.frames.base import Frame, Panel, html_table
from repro.viz.graph_render import render_graph


def _fake_results():
    """A small synthetic benchmark result population (3 methods x 3 datasets)."""
    rng = np.random.default_rng(0)
    results = []
    for method, family, base in (("kgraph", "graph", 0.8), ("kmeans", "raw", 0.5), ("kshape", "raw", 0.6)):
        for i, dataset in enumerate(("d1", "d2", "d3")):
            ari = float(np.clip(base + rng.normal(0, 0.05), 0, 1))
            results.append(
                BenchmarkResult(
                    method=method,
                    family=family,
                    dataset=dataset,
                    dataset_type="synthetic-shape" if i < 2 else "synthetic-trend",
                    n_series=40 + 10 * i,
                    length=64 + 32 * i,
                    n_classes=2 + i,
                    measures={"ari": ari, "ri": ari, "nmi": ari, "ami": ari},
                    runtime_seconds=0.1,
                )
            )
    return results


class TestFrameBuildingBlocks:
    def test_panel_requires_content(self):
        with pytest.raises(VisualizationError):
            Panel(title="empty").to_html()

    def test_panel_and_frame_render(self):
        frame = Frame(frame_id="demo", title="Demo", description="desc")
        frame.add_panel(Panel(title="p1", html_body="<p>hi</p>", caption="cap"))
        html = frame.to_html()
        assert 'id="demo"' in html
        assert "<p>hi</p>" in html and "cap" in html

    def test_empty_frame_rejected(self):
        with pytest.raises(VisualizationError):
            Frame(frame_id="x", title="X").to_html()

    def test_html_table(self):
        table = html_table([{"a": 1, "b": 0.123456}, {"a": 2, "b": 3.0}])
        assert table.count("<tr>") == 3  # header + 2 rows
        assert "0.123" in table

    def test_html_table_empty_rejected(self):
        with pytest.raises(VisualizationError):
            html_table([])


class TestGraphRender:
    def test_render_contains_all_nodes(self, fitted_kgraph):
        graph = fitted_kgraph.optimal_graph_
        svg = render_graph(graph, fitted_kgraph.labels_, random_state=0)
        assert svg.startswith("<svg")
        for node in graph.nodes():
            assert f"node {node} " in svg  # tooltip text per node

    def test_selected_node_ring(self, fitted_kgraph):
        graph = fitted_kgraph.optimal_graph_
        node = graph.nodes()[0]
        svg = render_graph(graph, fitted_kgraph.labels_, selected_node=node, random_state=0)
        assert svg.count("#d62728") >= 1

    def test_pca_layout_option(self, fitted_kgraph):
        svg = render_graph(
            fitted_kgraph.optimal_graph_, fitted_kgraph.labels_, layout="pca"
        )
        assert svg.startswith("<svg")

    def test_invalid_layout(self, fitted_kgraph):
        with pytest.raises(VisualizationError):
            render_graph(fitted_kgraph.optimal_graph_, fitted_kgraph.labels_, layout="3d")

    def test_thresholds_change_colouring(self, fitted_kgraph):
        graph = fitted_kgraph.optimal_graph_
        loose = render_graph(graph, fitted_kgraph.labels_, lambda_threshold=0.0, gamma_threshold=0.0, random_state=0)
        strict = render_graph(graph, fitted_kgraph.labels_, lambda_threshold=1.0, gamma_threshold=1.0, random_state=0)
        # With impossible thresholds everything is neutral grey.
        assert strict.count("#c8c8c8") >= loose.count("#c8c8c8")


class TestClusteringComparisonFrame:
    def test_basic(self, small_dataset, fitted_kgraph):
        frame = build_clustering_comparison_frame(
            small_dataset, {"kgraph": fitted_kgraph.labels_, "random": np.zeros(small_dataset.n_series, dtype=int)}
        )
        html = frame.to_html()
        assert "kgraph (ARI" in html
        assert "True labels" in html
        assert len(frame.panels) == 3
        assert frame.metadata["ari"]["kgraph"] > frame.metadata["ari"]["random"]

    def test_requires_labels(self, small_dataset, fitted_kgraph):
        from repro.utils.containers import TimeSeriesDataset

        unlabelled = TimeSeriesDataset(data=small_dataset.data)
        with pytest.raises(VisualizationError):
            build_clustering_comparison_frame(unlabelled, {"kgraph": fitted_kgraph.labels_})

    def test_subsampling(self, small_dataset, fitted_kgraph):
        frame = build_clustering_comparison_frame(
            small_dataset, {"kgraph": fitted_kgraph.labels_}, max_series_per_panel=10
        )
        assert frame.to_html()

    def test_label_length_mismatch(self, small_dataset):
        with pytest.raises(VisualizationError):
            build_clustering_comparison_frame(small_dataset, {"m": [0, 1]})


class TestBenchmarkFrame:
    def test_basic(self):
        frame = build_benchmark_frame(_fake_results(), measure="ari")
        html = frame.to_html()
        assert "kgraph" in html
        assert "Mean rank" in html
        assert frame.metadata["n_results"] == 9

    def test_filters_applied(self):
        frame = build_benchmark_frame(_fake_results(), dataset_type="synthetic-trend")
        assert frame.metadata["n_results"] == 3

    def test_over_filtering_rejected(self):
        with pytest.raises(VisualizationError):
            build_benchmark_frame(_fake_results(), min_length=10_000)

    def test_empty_results_rejected(self):
        with pytest.raises(VisualizationError):
            build_benchmark_frame([])


class TestGraphFrame:
    def test_basic(self, fitted_kgraph, small_dataset):
        frame = build_graph_frame(fitted_kgraph, small_dataset, random_state=0)
        html = frame.to_html()
        assert "k-Graph in action" in frame.title
        assert "exclusivity" in html
        assert "Graphoid sizes per cluster" in html
        assert frame.metadata["optimal_length"] == fitted_kgraph.optimal_length_

    def test_custom_thresholds_and_node(self, fitted_kgraph, small_dataset):
        node = fitted_kgraph.optimal_graph_.nodes()[0]
        frame = build_graph_frame(
            fitted_kgraph,
            small_dataset,
            lambda_threshold=0.3,
            gamma_threshold=0.4,
            selected_node=node,
            random_state=0,
        )
        assert frame.metadata["lambda"] == pytest.approx(0.3)
        assert frame.metadata["selected_node"] == node

    def test_dataset_mismatch_rejected(self, fitted_kgraph, periodic_dataset):
        with pytest.raises(VisualizationError):
            build_graph_frame(fitted_kgraph, periodic_dataset)


class TestInterpretabilityAndUnderTheHoodFrames:
    def test_interpretability_frame(self, small_dataset, fitted_kgraph):
        from repro.interpret.quiz import build_quiz
        from repro.interpret.representations import centroid_representation, graphoid_representation
        from repro.interpret.user_model import score_methods

        quizzes = {
            "kmeans": build_quiz(
                small_dataset,
                "kmeans",
                small_dataset.labels,
                centroid_representation("kmeans", small_dataset.data, small_dataset.labels),
                random_state=0,
            ),
            "kgraph": build_quiz(
                small_dataset,
                "kgraph",
                fitted_kgraph.labels_,
                graphoid_representation(fitted_kgraph),
                random_state=0,
            ),
        }
        scores = score_methods(quizzes, n_users=2, random_state=0)
        frame = build_interpretability_frame(quizzes, scores)
        html = frame.to_html()
        assert "Quiz questions" in html
        assert "Participant score per method" in html
        assert set(frame.metadata["scores"]) == {"kmeans", "kgraph"}

    def test_interpretability_frame_empty_rejected(self):
        with pytest.raises(VisualizationError):
            build_interpretability_frame({})

    def test_under_the_hood_frame(self, fitted_kgraph):
        frame = build_under_the_hood_frame(fitted_kgraph)
        html = frame.to_html()
        assert "4.1 Length selection" in html
        assert "4.2 Feature matrix" in html
        assert "4.3 Consensus matrix" in html
        assert "Pipeline timings" in html
        assert frame.metadata["optimal_length"] == fitted_kgraph.optimal_length_
