"""E3 — Graph frame / Scenario 2 (Fig. 3, frame 2).

Reproduces the threshold exploration of the Graph frame: for each dataset,
sweep the representativity (λ) and exclusivity (γ) thresholds and count the
coloured (representative *and* exclusive) nodes and edges per cluster.  The
paper's scenario asks the user to find thresholds such that every cluster has
at least one coloured element; the expected shape is that such a setting
exists for well-separated pattern datasets.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_utils import bench_catalogue, format_table, report
from repro.core.kgraph import KGraph
from repro.graph.graphoid import (
    edge_exclusivity,
    edge_representativity,
    node_exclusivity,
    node_representativity,
)

DATASETS = ("cylinder_bell_funnel", "shapelet_classes", "sine_families", "two_patterns")
THRESHOLDS = (0.9, 0.7, 0.5, 0.3)


def _coloured_elements(graph, labels, lam, gam):
    """Per-cluster count of nodes and edges passing both thresholds."""
    n_excl, n_repr = node_exclusivity(graph, labels), node_representativity(graph, labels)
    e_excl, e_repr = edge_exclusivity(graph, labels), edge_representativity(graph, labels)
    counts = {}
    for cluster in n_excl:
        nodes = sum(
            1 for node in graph.nodes()
            if n_excl[cluster][node] >= gam and n_repr[cluster][node] >= lam
        )
        edges = sum(
            1 for edge in graph.edges()
            if e_excl[cluster][edge] >= gam and e_repr[cluster][edge] >= lam
        )
        counts[cluster] = (nodes, edges)
    return counts


def _run_graph_frame():
    catalogue = bench_catalogue()
    rows = []
    coverage = {}
    for name in DATASETS:
        dataset = catalogue.get(name).generate(random_state=1)
        model = KGraph(n_clusters=dataset.n_classes, n_lengths=3, random_state=1)
        model.fit(dataset.data)
        graph = model.optimal_graph_
        labels = model.result_.labels
        covered_at = None
        for threshold in THRESHOLDS:
            counts = _coloured_elements(graph, labels, threshold, threshold)
            total_nodes = sum(nodes for nodes, _ in counts.values())
            total_edges = sum(edges for _, edges in counts.values())
            all_covered = all(nodes + edges >= 1 for nodes, edges in counts.values())
            if all_covered and covered_at is None:
                covered_at = threshold
            rows.append(
                {
                    "dataset": name,
                    "length": graph.length,
                    "lambda=gamma": threshold,
                    "coloured_nodes": total_nodes,
                    "coloured_edges": total_edges,
                    "every_cluster_covered": "yes" if all_covered else "no",
                }
            )
        coverage[name] = covered_at
    return rows, coverage


@pytest.mark.benchmark(group="E3-graph-frame")
def test_bench_graph_frame_threshold_sweep(benchmark):
    rows, coverage = benchmark.pedantic(_run_graph_frame, rounds=1, iterations=1)
    table = format_table(
        rows,
        ["dataset", "length", "lambda=gamma", "coloured_nodes", "coloured_edges", "every_cluster_covered"],
    )
    covered = {name: value for name, value in coverage.items() if value is not None}
    summary = (
        f"{table}\n\nDatasets where a threshold exists with >= 1 coloured element per cluster: "
        f"{len(covered)}/{len(coverage)} "
        f"(strictest such threshold per dataset: {covered}).\n"
        "Paper expectation (Scenario 2): the user can always find such a setting on "
        "pattern datasets."
    )
    report("E3: Graph frame (lambda/gamma threshold sweep)", summary)
    benchmark.extra_info["coverage"] = {k: (v if v is not None else "none") for k, v in coverage.items()}
    assert len(covered) >= len(coverage) - 1
