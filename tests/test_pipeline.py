"""Tests for :mod:`repro.pipeline`: the stage framework, the
content-addressed cache, and the equivalence of the pipeline-driven
``KGraph.fit`` with the retained reference monolith.

The acceptance bar of the refactor is asserted here:

* ``fit`` / ``fit_predict`` / ``prediction_state`` through the pipeline are
  **bit-identical** to ``fit_reference`` (the seed monolith) on every
  execution backend;
* with a :class:`StageCache`, a one-parameter change re-executes only the
  stages downstream of the change (verified via the per-run stage records
  and the pipeline's stage-run counters) and still produces results
  bit-identical to a cold fit.
"""

import numpy as np
import pytest

from repro.benchmark.runner import BenchmarkRunner
from repro.core.kgraph import KGraph
from repro.exceptions import PipelineError, ValidationError
from repro.pipeline import (
    KGRAPH_STAGE_NAMES,
    DiskStageCache,
    MemoryStageCache,
    Pipeline,
    PipelineContext,
    Stage,
    build_kgraph_pipeline,
    fingerprint,
    resolve_stage_cache,
)

ALL_STAGES = list(KGRAPH_STAGE_NAMES)


# --------------------------------------------------------------------------- #
# fingerprints
# --------------------------------------------------------------------------- #
class TestFingerprint:
    def test_content_addressed_arrays(self):
        a = np.arange(12, dtype=float).reshape(3, 4)
        b = np.arange(12, dtype=float).reshape(3, 4) + 0.0
        assert a is not b
        assert fingerprint(a) == fingerprint(b)
        assert fingerprint(a) != fingerprint(a + 1.0)
        assert fingerprint(a) != fingerprint(a.astype(np.float32))
        assert fingerprint(a) != fingerprint(a.reshape(4, 3))

    def test_generator_state_participates(self):
        a = np.random.default_rng(5)
        b = np.random.default_rng(5)
        assert fingerprint(a) == fingerprint(b)
        a.integers(0, 10)  # advance the stream
        assert fingerprint(a) != fingerprint(b)

    def test_dict_order_does_not_matter(self):
        assert fingerprint({"x": 1, "y": 2}) == fingerprint({"y": 2, "x": 1})

    def test_scalar_types_are_distinguished(self):
        assert fingerprint(1) != fingerprint(1.0)
        assert fingerprint(True) != fingerprint(1)
        assert fingerprint("1") != fingerprint(1)
        assert fingerprint(None) != fingerprint(0)

    def test_nested_containers(self):
        value = {"rows": [np.arange(3), (1, 2.5, "s")], "none": None}
        clone = {"rows": [np.arange(3), (1, 2.5, "s")], "none": None}
        assert fingerprint(value) == fingerprint(clone)


# --------------------------------------------------------------------------- #
# pipeline wiring and execution (toy stages)
# --------------------------------------------------------------------------- #
class _AddStage(Stage):
    name = "add"
    inputs = ("a", "b")
    outputs = ("total",)
    config_keys = ("bias",)

    def run(self, ctx):
        return {"total": ctx.require("a") + ctx.require("b") + ctx.config.get("bias", 0)}


class _DoubleStage(Stage):
    name = "double"
    inputs = ("total",)
    outputs = ("doubled",)

    def run(self, ctx):
        return {"doubled": 2 * ctx.require("total")}


class TestPipelineWiring:
    def test_runs_in_order_and_reports(self):
        pipeline = Pipeline([_AddStage(), _DoubleStage()], seed_inputs=("a", "b"))
        ctx = PipelineContext(config={"bias": 1}, values={"a": 2, "b": 3})
        report = pipeline.run(ctx)
        assert ctx.values["doubled"] == 12
        assert report.executed == ["add", "double"]
        assert report.cached == []
        assert set(report.stage_keys) == {"add", "double"}
        assert pipeline.run_counts == {"add": 1, "double": 1}

    def test_missing_producer_rejected_at_construction(self):
        with pytest.raises(PipelineError, match="consumes"):
            Pipeline([_DoubleStage()], seed_inputs=("a",))

    def test_duplicate_outputs_rejected(self):
        class Clash(Stage):
            name = "clash"
            inputs = ()
            outputs = ("total",)

            def run(self, ctx):  # pragma: no cover - never runs
                return {"total": 0}

        with pytest.raises(PipelineError, match="re-produces"):
            Pipeline([_AddStage(), Clash()], seed_inputs=("a", "b"))

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(PipelineError, match="duplicate"):
            Pipeline([_AddStage(), _AddStage()], seed_inputs=("a", "b"))

    def test_missing_seed_value_rejected_at_run(self):
        pipeline = Pipeline([_AddStage()], seed_inputs=("a", "b"))
        with pytest.raises(PipelineError, match="seed inputs"):
            pipeline.run(PipelineContext(values={"a": 1}))

    def test_undeclared_outputs_rejected(self):
        class Liar(Stage):
            name = "liar"
            inputs = ()
            outputs = ("promised",)

            def run(self, ctx):
                return {"something_else": 1}

        pipeline = Pipeline([Liar()])
        with pytest.raises(PipelineError, match="declared"):
            pipeline.run(PipelineContext())

    def test_cache_replays_and_skips(self):
        cache = MemoryStageCache()
        pipeline = Pipeline([_AddStage(), _DoubleStage()], seed_inputs=("a", "b"))
        first = pipeline.run(
            PipelineContext(config={"bias": 0}, values={"a": 1, "b": 2}), cache=cache
        )
        assert first.executed == ["add", "double"]
        second_ctx = PipelineContext(config={"bias": 0}, values={"a": 1, "b": 2})
        second = pipeline.run(second_ctx, cache=cache)
        assert second.cached == ["add", "double"]
        assert second_ctx.values["doubled"] == 6
        assert pipeline.run_counts == {"add": 1, "double": 1}
        # A config change invalidates 'add' (and downstream 'double' via its
        # changed input), but a change to an *unlisted* key invalidates
        # nothing.
        third = pipeline.run(
            PipelineContext(config={"bias": 5}, values={"a": 1, "b": 2}), cache=cache
        )
        assert third.executed == ["add", "double"]
        fourth = pipeline.run(
            PipelineContext(
                config={"bias": 0, "unrelated": 99}, values={"a": 1, "b": 2}
            ),
            cache=cache,
        )
        assert fourth.cached == ["add", "double"]


# --------------------------------------------------------------------------- #
# caches
# --------------------------------------------------------------------------- #
class TestStageCaches:
    def test_memory_lru_eviction(self):
        from repro.pipeline.cache import CacheEntryMeta

        cache = MemoryStageCache(max_entries=2)
        for index in range(3):
            cache.put(
                f"key{index}",
                {"value": index},
                CacheEntryMeta(key=f"key{index}", stage="s"),
            )
        assert cache.get("key0") is None  # evicted
        assert cache.get("key2") == {"value": 2}
        assert cache.counters.evictions == 1

    def test_memory_cache_clones_generators(self):
        from repro.pipeline.cache import CacheEntryMeta

        rng = np.random.default_rng(3)
        cache = MemoryStageCache()
        cache.put("k", {"rng": rng}, CacheEntryMeta(key="k", stage="s"))
        rng.integers(0, 10)  # consuming the original must not touch the copy
        replay_a = cache.get("k")["rng"]
        replay_b = cache.get("k")["rng"]
        assert replay_a is not replay_b
        assert replay_a.integers(0, 1000) == replay_b.integers(0, 1000)

    def test_disk_round_trip_and_inspection(self, tmp_path):
        from repro.pipeline.cache import CacheEntryMeta

        cache = DiskStageCache(tmp_path / "cache")
        outputs = {"array": np.arange(5), "label": "x"}
        cache.put(
            "abc123",
            outputs,
            CacheEntryMeta(key="abc123", stage="embed", outputs=["array", "label"]),
        )
        replay = DiskStageCache(tmp_path / "cache").get("abc123")
        assert np.array_equal(replay["array"], outputs["array"])
        entries = DiskStageCache(tmp_path / "cache").entries()
        assert [entry.stage for entry in entries] == ["embed"]
        cache.clear()
        assert cache.get("abc123") is None
        assert DiskStageCache(tmp_path / "cache").entries() == []

    def test_disk_clear_leaves_unrelated_files_alone(self, tmp_path):
        from repro.pipeline.cache import CacheEntryMeta

        # A user may point --cache at a directory that already holds other
        # files; clear() must only remove checkpoints this class wrote.
        (tmp_path / "package.json").write_text('{"name": "not-a-checkpoint"}')
        (tmp_path / "results.pkl").write_bytes(b"unrelated")
        (tmp_path / "keyed.json").write_text('{"key": "elsewhere", "stage": "s"}')
        cache = DiskStageCache(tmp_path)
        cache.put("deadbeef", {"v": 1}, CacheEntryMeta(key="deadbeef", stage="s"))
        cache.clear()
        assert cache.get("deadbeef") is None
        assert (tmp_path / "package.json").exists()
        assert (tmp_path / "results.pkl").exists()
        assert (tmp_path / "keyed.json").exists()

    def test_disk_corrupt_payload_is_a_miss(self, tmp_path):
        from repro.pipeline.cache import CacheEntryMeta

        cache = DiskStageCache(tmp_path)
        cache.put("key", {"v": 1}, CacheEntryMeta(key="key", stage="s"))
        (tmp_path / "key.pkl").write_bytes(b"not a pickle")
        assert cache.get("key") is None
        assert cache.counters.misses == 1

    def test_disk_corrupt_payload_is_quarantined(self, tmp_path):
        from repro.pipeline.cache import CacheEntryMeta

        cache = DiskStageCache(tmp_path)
        cache.put("key", {"v": 1}, CacheEntryMeta(key="key", stage="s"))
        (tmp_path / "key.pkl").write_bytes(b"not a pickle")
        assert cache.get("key") is None
        # The corrupt checkpoint is moved aside — not deleted (an operator
        # may want to inspect it) and not left to poison future lookups.
        assert not (tmp_path / "key.pkl").exists()
        assert (tmp_path / "key.pkl.corrupt").exists()
        assert not (tmp_path / "key.json").exists()
        assert (tmp_path / "key.json.corrupt").exists()
        assert cache.counters.quarantines == 1
        assert cache.stats()["quarantines"] == 1
        # Quarantined files are invisible to a fresh cache over the same
        # directory, and a re-put of the same key works.
        fresh = DiskStageCache(tmp_path)
        assert fresh.get("key") is None
        fresh.put("key", {"v": 2}, CacheEntryMeta(key="key", stage="s"))
        assert fresh.get("key") == {"v": 2}

    def test_resolve_stage_cache(self, tmp_path):
        assert resolve_stage_cache(None) is None
        memory = MemoryStageCache()
        assert resolve_stage_cache(memory) is memory
        disk = resolve_stage_cache(tmp_path / "c")
        assert isinstance(disk, DiskStageCache)
        with pytest.raises(PipelineError):
            resolve_stage_cache(42)


# --------------------------------------------------------------------------- #
# KGraph equivalence: pipeline vs the retained reference monolith
# --------------------------------------------------------------------------- #
def _assert_fits_identical(fitted: KGraph, reference: KGraph) -> None:
    assert np.array_equal(fitted.labels_, reference.labels_)
    assert np.array_equal(
        fitted.result_.consensus_matrix, reference.result_.consensus_matrix
    )
    assert fitted.result_.optimal_length == reference.result_.optimal_length
    assert sorted(fitted.result_.graphs) == sorted(reference.result_.graphs)
    for length in fitted.result_.graphs:
        assert (
            fitted.result_.graphs[length].to_payload()
            == reference.result_.graphs[length].to_payload()
        )
    for ours, theirs in zip(fitted.result_.partitions, reference.result_.partitions):
        assert ours.length == theirs.length
        assert np.array_equal(ours.labels, theirs.labels)
        assert np.array_equal(ours.feature_matrix, theirs.feature_matrix)
    for score_a, score_b in zip(
        fitted.result_.length_scores, reference.result_.length_scores
    ):
        assert score_a == score_b
    for kind in ("lambda_graphoids", "gamma_graphoids"):
        ours, theirs = getattr(fitted.result_, kind), getattr(reference.result_, kind)
        assert set(ours) == set(theirs)
        for cluster in ours:
            assert ours[cluster].nodes == theirs[cluster].nodes
            assert ours[cluster].edges == theirs[cluster].edges
    state_a, state_b = fitted.prediction_state(), reference.prediction_state()
    assert state_a.length == state_b.length
    assert np.array_equal(state_a.patterns, state_b.patterns)
    assert np.array_equal(state_a.centroids, state_b.centroids)
    assert np.array_equal(state_a.clusters, state_b.clusters)


class TestKGraphPipelineEquivalence:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process", "shared"])
    def test_bit_identical_to_reference_across_backends(self, small_dataset, backend):
        jobs = None if backend == "serial" else 2
        fitted = KGraph(
            n_clusters=3, n_lengths=2, random_state=11, backend=backend, n_jobs=jobs
        ).fit(small_dataset.data)
        reference = KGraph(n_clusters=3, n_lengths=2, random_state=11).fit_reference(
            small_dataset.data
        )
        _assert_fits_identical(fitted, reference)

    def test_fit_predict_matches_reference(self, small_dataset):
        pipeline_labels = KGraph(
            n_clusters=3, n_lengths=3, random_state=0
        ).fit_predict(small_dataset.data)
        reference = KGraph(n_clusters=3, n_lengths=3, random_state=0).fit_reference(
            small_dataset.data
        )
        assert np.array_equal(pipeline_labels, reference.labels_)

    def test_per_stage_backend_override_is_bit_identical(self, small_dataset):
        fitted = KGraph(
            n_clusters=3,
            n_lengths=2,
            random_state=4,
            stage_backends={"embed": "thread", "interpretability": "serial"},
            n_jobs=2,
        ).fit(small_dataset.data)
        reference = KGraph(n_clusters=3, n_lengths=2, random_state=4).fit_reference(
            small_dataset.data
        )
        _assert_fits_identical(fitted, reference)

    def test_unknown_stage_backend_rejected(self, small_dataset):
        model = KGraph(n_clusters=3, stage_backends={"embedding": "thread"})
        with pytest.raises(ValidationError, match="unknown stage names"):
            model.fit(small_dataset.data)

    def test_report_and_stage_timings_populated(self, small_dataset):
        model = KGraph(n_clusters=3, n_lengths=2, random_state=0).fit(
            small_dataset.data
        )
        report = model.pipeline_report_
        assert [record.name for record in report.records] == ALL_STAGES
        assert report.executed == ALL_STAGES
        assert report.config_hash
        summary = model.result_.summary()
        assert list(summary["stage_timings"]) == ALL_STAGES
        assert all(seconds >= 0.0 for seconds in summary["stage_timings"].values())
        # The reference monolith records no stage sections.
        reference = KGraph(n_clusters=3, n_lengths=2, random_state=0).fit_reference(
            small_dataset.data
        )
        assert reference.pipeline_report_ is None
        assert reference.result_.stage_timings() == {}

    def test_fit_validation_matches_predict_validation(self):
        model = KGraph(n_clusters=3)
        with pytest.raises(ValidationError, match="ragged"):
            model.fit([[1.0, 2.0, 3.0], [1.0, 2.0]])
        with pytest.raises(ValidationError, match=r"series 1, position 2"):
            model.fit(np.array([[0.0] * 8, [0.0, 0.0, np.nan] + [0.0] * 5, [0.0] * 8]))
        with pytest.raises(ValidationError, match="training data.*at least 3"):
            model.fit(np.zeros((2, 32)))


# --------------------------------------------------------------------------- #
# resumability: one changed parameter re-runs only downstream stages
# --------------------------------------------------------------------------- #
class TestKGraphResume:
    def test_identical_refit_replays_everything(self, small_dataset):
        cache = MemoryStageCache()
        first = KGraph(
            n_clusters=3, n_lengths=2, random_state=0, stage_cache=cache
        ).fit(small_dataset.data)
        second = KGraph(
            n_clusters=3, n_lengths=2, random_state=0, stage_cache=cache
        ).fit(small_dataset.data)
        assert first.pipeline_report_.executed == ALL_STAGES
        assert second.pipeline_report_.cached == ALL_STAGES
        _assert_fits_identical(second, first)

    @pytest.mark.parametrize(
        ("override", "expected_cached"),
        [
            # feature_mode only enters graph_cluster: the embedding replays.
            ({"feature_mode": "nodes"}, ["embed"]),
            # n_clusters enters graph_cluster and consensus, not embed.
            ({"n_clusters": 4}, ["embed"]),
            # the graphoid thresholds only enter the final stage: everything
            # upstream replays.
            (
                {"gamma_threshold": 0.8},
                ["embed", "graph_cluster", "consensus", "length_selection"],
            ),
        ],
    )
    def test_parameter_change_reruns_only_downstream(
        self, small_dataset, override, expected_cached
    ):
        cache = MemoryStageCache()
        params = dict(n_clusters=3, n_lengths=2, random_state=0)
        KGraph(**params, stage_cache=cache).fit(small_dataset.data)
        params.update(override)
        warm = KGraph(**params, stage_cache=cache).fit(small_dataset.data)
        assert warm.pipeline_report_.cached == expected_cached
        assert warm.pipeline_report_.executed == [
            name for name in ALL_STAGES if name not in expected_cached
        ]
        # The warm, partially replayed fit must equal a cold fit bit for bit.
        cold = KGraph(**params).fit_reference(small_dataset.data)
        _assert_fits_identical(warm, cold)

    def test_seed_change_invalidates_everything(self, small_dataset):
        cache = MemoryStageCache()
        KGraph(n_clusters=3, n_lengths=2, random_state=0, stage_cache=cache).fit(
            small_dataset.data
        )
        other = KGraph(
            n_clusters=3, n_lengths=2, random_state=1, stage_cache=cache
        ).fit(small_dataset.data)
        assert other.pipeline_report_.cached == []

    def test_stage_run_counters_skip_cached_stages(self, small_dataset):
        cache = MemoryStageCache()
        pipeline = build_kgraph_pipeline()
        assert set(pipeline.run_counts) == set(ALL_STAGES)
        KGraph(n_clusters=3, n_lengths=2, random_state=0, stage_cache=cache).fit(
            small_dataset.data
        )
        KGraph(
            n_clusters=3,
            n_lengths=2,
            random_state=0,
            gamma_threshold=0.9,
            stage_cache=cache,
        ).fit(small_dataset.data)
        # Cache accounting across both fits: 5 stores + 4 replays.
        assert cache.counters.stores == 6  # 5 cold + 1 re-run interpretability
        assert cache.counters.hits == 4

    def test_disk_cache_resumes_across_sessions(self, small_dataset, tmp_path):
        cache_dir = tmp_path / "stages"
        first = KGraph(
            n_clusters=3, n_lengths=2, random_state=0, stage_cache=cache_dir
        ).fit(small_dataset.data)
        assert first.pipeline_report_.executed == ALL_STAGES
        # A fresh DiskStageCache instance simulates a new session/process.
        second = KGraph(
            n_clusters=3, n_lengths=2, random_state=0, stage_cache=str(cache_dir)
        ).fit(small_dataset.data)
        assert second.pipeline_report_.cached == ALL_STAGES
        _assert_fits_identical(second, first)


# --------------------------------------------------------------------------- #
# benchmark integration: the parameter grid reuses upstream checkpoints
# --------------------------------------------------------------------------- #
class TestBenchmarkGrid:
    def test_grid_reuses_embedding_across_combinations(self, small_dataset):
        runner = BenchmarkRunner(["kgraph"])
        results = runner.run_kgraph_grid(
            small_dataset,
            [{}, {"feature_mode": "nodes"}, {"feature_mode": "edges"}],
            base_params={"n_lengths": 2},
            random_state=0,
        )
        assert [result.error for result in results] == [None, None, None]
        assert results[0].measures["stages_cached"] == 0.0
        assert all(
            result.measures["stages_cached"] >= 1.0 for result in results[1:]
        )
        # Grid results match independent cold fits bit for bit.
        cold = KGraph(
            small_dataset.n_classes,
            n_lengths=2,
            feature_mode="edges",
            random_state=0,
        ).fit_predict(small_dataset.data)
        ari = results[2].measures["ari"]
        from repro.metrics.clustering import adjusted_rand_index

        assert ari == pytest.approx(
            adjusted_rand_index(small_dataset.labels, cold)
        )

    def test_grid_isolates_failing_combination(self, small_dataset):
        runner = BenchmarkRunner(["kgraph"])
        results = runner.run_kgraph_grid(
            small_dataset,
            [{"feature_mode": "magic"}, {}],
            base_params={"n_lengths": 2},
            random_state=0,
        )
        assert results[0].failed and "feature_mode" in results[0].error
        assert not results[1].failed

    def test_empty_grid_rejected(self, small_dataset):
        from repro.exceptions import BenchmarkError

        runner = BenchmarkRunner(["kgraph"])
        with pytest.raises(BenchmarkError):
            runner.run_kgraph_grid(small_dataset, [])
