"""The :class:`Pipeline` executor: a validated DAG of cacheable stages.

``Pipeline.run`` executes its stages in declaration order (which the
constructor proves is a valid topological order of the declared
input/output dependencies), timing each stage under ``stage:<name>`` and —
when a :class:`~repro.pipeline.cache.StageCache` is supplied — replaying
checkpointed outputs instead of re-executing stages whose content-addressed
key is unchanged.  The returned :class:`PipelineReport` records, per stage,
the cache key, whether it executed or replayed, and its wall-clock seconds;
the report is what tests assert resumability against and what the serving
manifest embeds (schema v2).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.exceptions import PipelineError
from repro.parallel import ProcessBackend
from repro.pipeline.cache import CacheEntryMeta, StageCache
from repro.pipeline.fingerprint import fingerprint
from repro.pipeline.stage import PipelineContext, Stage

_FAULT_COUNTERS = ("attempts", "timeouts", "pool_rebuilds")


def _fault_snapshot(ctx: PipelineContext, stage_name: str) -> Dict[str, int]:
    """Current cumulative fault counters attributed to ``stage_name``."""
    stats = ctx.fault_stats.get(stage_name) or {}
    return {name: int(stats.get(name, 0)) for name in _FAULT_COUNTERS}


@dataclass
class StageRecord:
    """What one stage did during one :meth:`Pipeline.run`."""

    name: str
    key: str
    cached: bool
    seconds: float
    outputs: List[str] = field(default_factory=list)
    #: Whether this stage executed as half of a fused dispatch pair.
    fused: bool = False
    #: Pickled payload bytes this stage shipped to a process backend (0 for
    #: serial/thread dispatches and cache replays; a fused pair's volume is
    #: attributed to the pair's *first* record, which ran the dispatch).
    bytes_shipped: int = 0
    #: Fault-tolerance counters for this stage's dispatches (see
    #: :class:`~repro.parallel.ExecutionBackend`): job dispatches consumed,
    #: jobs whose final outcome timed out, and worker pools rebuilt.  All
    #: zero for cache replays; a fused pair's activity is attributed to the
    #: pair's first record, like ``bytes_shipped``.
    attempts: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "key": self.key,
            "cached": self.cached,
            "seconds": float(self.seconds),
            "outputs": list(self.outputs),
            "fused": self.fused,
            "bytes_shipped": int(self.bytes_shipped),
            "attempts": int(self.attempts),
            "timeouts": int(self.timeouts),
            "pool_rebuilds": int(self.pool_rebuilds),
        }


@dataclass
class PipelineReport:
    """Per-stage outcome of one pipeline run (the resumability ledger)."""

    records: List[StageRecord] = field(default_factory=list)
    config_hash: str = ""

    @property
    def executed(self) -> List[str]:
        """Names of the stages that actually ran."""
        return [record.name for record in self.records if not record.cached]

    @property
    def cached(self) -> List[str]:
        """Names of the stages replayed from the cache."""
        return [record.name for record in self.records if record.cached]

    @property
    def stage_keys(self) -> Dict[str, str]:
        """Mapping stage name -> content-addressed cache key."""
        return {record.name: record.key for record in self.records}

    @property
    def fused(self) -> List[str]:
        """Names of the stages that executed inside a fused dispatch pair."""
        return [record.name for record in self.records if record.fused]

    @property
    def stage_bytes_shipped(self) -> Dict[str, int]:
        """Mapping stage name -> pickled payload bytes shipped to workers."""
        return {record.name: int(record.bytes_shipped) for record in self.records}

    @property
    def stage_fault_stats(self) -> Dict[str, Dict[str, int]]:
        """Mapping stage name -> its attempts/timeouts/pool_rebuilds counters."""
        return {
            record.name: {
                "attempts": int(record.attempts),
                "timeouts": int(record.timeouts),
                "pool_rebuilds": int(record.pool_rebuilds),
            }
            for record in self.records
        }

    @property
    def total_attempts(self) -> int:
        """Job dispatches consumed across every stage of the run."""
        return sum(int(record.attempts) for record in self.records)

    @property
    def total_timeouts(self) -> int:
        """Jobs whose final outcome timed out, across every stage."""
        return sum(int(record.timeouts) for record in self.records)

    @property
    def total_pool_rebuilds(self) -> int:
        """Worker pools rebuilt after breakage/hangs, across every stage."""
        return sum(int(record.pool_rebuilds) for record in self.records)

    def record_for(self, name: str) -> StageRecord:
        for record in self.records:
            if record.name == name:
                return record
        raise PipelineError(f"no stage named {name!r} in this report")

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (embedded in the model-artifact manifest)."""
        return {
            "config_hash": self.config_hash,
            "stages": [record.as_dict() for record in self.records],
        }


class Pipeline:
    """An ordered DAG of :class:`Stage` objects with checkpoint/resume.

    The constructor validates the wiring once:

    * stage names are unique;
    * no two stages produce the same value;
    * every stage input is either a seed value (named in ``seed_inputs``)
      or the output of an *earlier* stage — i.e. the declaration order is a
      topological order of the dependency DAG.

    ``run`` then never needs to guess: a malformed pipeline fails at
    construction, not three stages into an expensive fit.
    """

    def __init__(self, stages: Sequence[Stage], *, seed_inputs: Sequence[str] = ()) -> None:
        stages = list(stages)
        if not stages:
            raise PipelineError("a pipeline needs at least one stage")
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise PipelineError(f"duplicate stage names: {sorted(names)}")
        available = set(seed_inputs)
        for stage in stages:
            missing = [name for name in stage.inputs if name not in available]
            if missing:
                raise PipelineError(
                    f"stage {stage.name!r} consumes {missing} but no earlier "
                    f"stage or seed input produces them (available: "
                    f"{sorted(available)})"
                )
            clashes = [name for name in stage.outputs if name in available]
            if clashes:
                raise PipelineError(
                    f"stage {stage.name!r} re-produces already available "
                    f"values {clashes}; every value must have one producer"
                )
            available.update(stage.outputs)
        self.stages = stages
        self.seed_inputs = tuple(seed_inputs)
        #: Total executions per stage name across every run of this
        #: instance (cache replays are *not* counted — these are the
        #: stage-run counters the resume tests assert on).
        self.run_counts: Dict[str, int] = {name: 0 for name in names}

    # ------------------------------------------------------------------ #
    def stage_key(
        self,
        stage: Stage,
        ctx: PipelineContext,
        _fingerprint: "Callable[[object], str]" = fingerprint,
    ) -> str:
        """Content-addressed cache key of ``stage`` in the current context."""
        digest = hashlib.sha256()
        digest.update(f"stage:{stage.name}:v{stage.version};".encode())
        for key in stage.config_keys:
            digest.update(f"config:{key}=".encode())
            digest.update(fingerprint(ctx.config.get(key)).encode())
        for name in stage.inputs:
            digest.update(f"input:{name}=".encode())
            digest.update(_fingerprint(ctx.require(name)).encode())
        return digest.hexdigest()

    def _fusion_partner(
        self, stage: Stage, index: int, ctx: PipelineContext, fuse: Optional[bool]
    ) -> Optional[Stage]:
        """The next stage, iff ``stage`` should fuse with it this run.

        ``fuse=None`` (auto) fuses only when both stages dispatch on the
        *same* :class:`~repro.parallel.ProcessBackend` instance — that is
        when the intermediate outputs would otherwise cross the process
        boundary twice; ``fuse=True`` forces fusing every declared pair
        (any backend), ``fuse=False`` disables fusing entirely.
        """
        if fuse is False or stage.fusable_with is None:
            return None
        if index + 1 >= len(self.stages):
            return None
        partner = self.stages[index + 1]
        if partner.name != stage.fusable_with:
            return None
        if fuse is True:
            return partner
        first = ctx.backend_for(stage.name)
        return (
            partner
            if first is ctx.backend_for(partner.name)
            and isinstance(first, ProcessBackend)
            else None
        )

    def run(
        self,
        ctx: PipelineContext,
        *,
        cache: Optional[StageCache] = None,
        config_hash: Optional[str] = None,
        fuse: Optional[bool] = None,
    ) -> PipelineReport:
        """Execute every stage (or replay its checkpoint) and report.

        ``config_hash`` lets the driver stamp the report (and hence serve
        manifests) with a canonical config identity — e.g. the typed
        :meth:`repro.api.EstimatorConfig.config_hash` — instead of the
        ad-hoc fingerprint of the stages' config subset used as fallback.

        ``fuse`` controls fused dispatch of adjacent stage pairs that
        declare it (see :attr:`Stage.fusable_with`): ``None`` fuses
        automatically when the pair shares one process backend, ``True``
        forces it, ``False`` disables it.  Fusing only kicks in when the
        pair's first stage misses the cache — a hit replays unfused, so
        downstream-only re-runs keep their checkpoints — and both stages'
        entries are still keyed, stored and reported individually, so a
        fused run leaves the cache bit-identical to an unfused one.
        """
        missing_seed = [name for name in self.seed_inputs if name not in ctx.values]
        if missing_seed:
            raise PipelineError(
                f"pipeline seed inputs {missing_seed} are missing from the context"
            )
        if config_hash is None:
            config_hash = fingerprint(
                {key: ctx.config.get(key) for stage in self.stages for key in stage.config_keys}
            )
        report = PipelineReport(config_hash=config_hash)
        # Per-run fingerprint memo: a value consumed by several stages (the
        # graphs feed graph_cluster, length_selection AND interpretability)
        # is hashed once, not once per consumer.  Keyed by object identity —
        # sound because stages treat context values as read-only and the
        # stored reference pins the id for the run's lifetime.
        memo: Dict[int, tuple] = {}

        def _memoised_fingerprint(value: object) -> str:
            entry = memo.get(id(value))
            if entry is not None and entry[0] is value:
                return entry[1]
            digest = fingerprint(value)
            memo[id(value)] = (value, digest)
            return digest

        index = 0
        while index < len(self.stages):
            stage = self.stages[index]
            key = self.stage_key(stage, ctx, _memoised_fingerprint)
            start = time.perf_counter()
            cached_outputs = cache.get(key) if cache is not None else None
            if cached_outputs is not None:
                with ctx.watch.section(f"stage:{stage.name}"):
                    ctx.values.update(cached_outputs)
                report.records.append(
                    StageRecord(
                        name=stage.name,
                        key=key,
                        cached=True,
                        seconds=time.perf_counter() - start,
                        outputs=sorted(cached_outputs),
                    )
                )
                index += 1
                continue
            partner = self._fusion_partner(stage, index, ctx, fuse)
            if partner is not None:
                self._run_fused_pair(
                    stage, partner, key, ctx, cache, report, _memoised_fingerprint, start
                )
                index += 2
                continue
            bytes_before = ctx.bytes_shipped.get(stage.name, 0)
            faults_before = _fault_snapshot(ctx, stage.name)
            with ctx.watch.section(f"stage:{stage.name}"):
                outputs = dict(stage.run(ctx))
            self._check_outputs(stage, outputs)
            ctx.values.update(outputs)
            self.run_counts[stage.name] += 1
            seconds = time.perf_counter() - start
            if cache is not None:
                cache.put(
                    key,
                    outputs,
                    CacheEntryMeta(
                        key=key,
                        stage=stage.name,
                        outputs=sorted(outputs),
                        seconds=seconds,
                        created_unix=time.time(),
                    ),
                )
            faults_after = _fault_snapshot(ctx, stage.name)
            report.records.append(
                StageRecord(
                    name=stage.name,
                    key=key,
                    cached=False,
                    seconds=seconds,
                    outputs=sorted(outputs),
                    bytes_shipped=ctx.bytes_shipped.get(stage.name, 0) - bytes_before,
                    attempts=faults_after["attempts"] - faults_before["attempts"],
                    timeouts=faults_after["timeouts"] - faults_before["timeouts"],
                    pool_rebuilds=faults_after["pool_rebuilds"]
                    - faults_before["pool_rebuilds"],
                )
            )
            index += 1
        return report

    @staticmethod
    def _check_outputs(stage: Stage, outputs: Dict[str, object]) -> None:
        if set(outputs) != set(stage.outputs):
            raise PipelineError(
                f"stage {stage.name!r} returned outputs {sorted(outputs)} "
                f"but declared {sorted(stage.outputs)}"
            )

    def _run_fused_pair(
        self,
        stage: Stage,
        partner: Stage,
        key: str,
        ctx: PipelineContext,
        cache: Optional[StageCache],
        report: PipelineReport,
        _memoised_fingerprint: "Callable[[object], str]",
        start: float,
    ) -> None:
        """Execute a declared stage pair through one fused dispatch.

        The cache layer still sees two independent entries: the first
        stage's outputs are stored under the key computed before running,
        the partner's under the key computed *after* the first outputs land
        in the context (its inputs only exist then) — exactly the keys the
        unfused path would have derived, because the fused job reproduces
        the stage-boundary state (including generator snapshots)
        bit-identically.  The combined wall-clock lands in the first
        stage's ``stage:<name>`` section; the worker-side sections keep the
        true split.
        """
        bytes_before = ctx.bytes_shipped.get(stage.name, 0)
        faults_before = _fault_snapshot(ctx, stage.name)
        with ctx.watch.section(f"stage:{stage.name}"):
            first_outputs, second_outputs = stage.run_fused(partner, ctx)
            first_outputs = dict(first_outputs)
            second_outputs = dict(second_outputs)
        self._check_outputs(stage, first_outputs)
        self._check_outputs(partner, second_outputs)
        ctx.values.update(first_outputs)
        self.run_counts[stage.name] += 1
        first_seconds = time.perf_counter() - start
        if cache is not None:
            cache.put(
                key,
                first_outputs,
                CacheEntryMeta(
                    key=key,
                    stage=stage.name,
                    outputs=sorted(first_outputs),
                    seconds=first_seconds,
                    created_unix=time.time(),
                ),
            )
        second_start = time.perf_counter()
        second_key = self.stage_key(partner, ctx, _memoised_fingerprint)
        with ctx.watch.section(f"stage:{partner.name}"):
            ctx.values.update(second_outputs)
        self.run_counts[partner.name] += 1
        second_seconds = time.perf_counter() - second_start
        if cache is not None:
            cache.put(
                second_key,
                second_outputs,
                CacheEntryMeta(
                    key=second_key,
                    stage=partner.name,
                    outputs=sorted(second_outputs),
                    seconds=second_seconds,
                    created_unix=time.time(),
                ),
            )
        faults_after = _fault_snapshot(ctx, stage.name)
        report.records.append(
            StageRecord(
                name=stage.name,
                key=key,
                cached=False,
                seconds=first_seconds,
                outputs=sorted(first_outputs),
                fused=True,
                bytes_shipped=ctx.bytes_shipped.get(stage.name, 0) - bytes_before,
                attempts=faults_after["attempts"] - faults_before["attempts"],
                timeouts=faults_after["timeouts"] - faults_before["timeouts"],
                pool_rebuilds=faults_after["pool_rebuilds"]
                - faults_before["pool_rebuilds"],
            )
        )
        report.records.append(
            StageRecord(
                name=partner.name,
                key=second_key,
                cached=False,
                seconds=second_seconds,
                outputs=sorted(second_outputs),
                fused=True,
            )
        )
